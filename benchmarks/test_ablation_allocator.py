"""Benchmark: allocator placement-policy ablation.

The paper justifies its allocator design with one sentence: "As FB is
not a large memory and as data and result sizes are similar, the chosen
allocation method is first-fit."  This benchmark checks that claim on
the paper's own workloads: best-fit placement buys nothing (both
policies place everything without splits), and first-fit preserves the
iteration-adjacency regularity at least as well — so the simpler policy
is the right choice.
"""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.params import Architecture
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.spec import paper_experiments

_SPECS = {spec.id: spec for spec in paper_experiments()}
_ROWS = ["E1", "E3", "MPEG", "ATR-SLD", "ATR-FI"]


@pytest.mark.parametrize("experiment_id", _ROWS)
def test_first_fit_vs_best_fit(benchmark, experiment_id):
    spec = _SPECS[experiment_id]
    application, clustering = spec.build()
    schedule = CompleteDataScheduler(Architecture.m1(spec.fb)).schedule(
        application, clustering
    )

    def allocate_both_policies():
        outcome = {}
        for policy in ("first", "best"):
            allocator = FrameBufferAllocator(schedule, fit_policy=policy)
            outcome[policy] = (
                allocator.allocate_set(0), allocator.allocate_set(1)
            )
        return outcome

    outcome = benchmark(allocate_both_policies)
    for policy, (set0, set1) in outcome.items():
        for allocation in (set0, set1):
            allocation.verify()
            assert allocation.splits == 0, (
                f"{spec.id}/{policy}: splits on set {allocation.fb_set}"
            )
    # First-fit keeps regularity at least as well as best-fit (best-fit
    # scatters allocations into snug holes, breaking adjacency).
    first_irregular = sum(
        a.irregular_placements for a in outcome["first"]
    )
    best_irregular = sum(
        a.irregular_placements for a in outcome["best"]
    )
    assert first_irregular <= best_irregular + 1, (
        f"{spec.id}: first-fit irregular={first_irregular}, "
        f"best-fit={best_irregular}"
    )
    print(
        f"\n{spec.id:<8} first-fit irregular={first_irregular}  "
        f"best-fit irregular={best_irregular} (both split-free)"
    )
