"""Benchmarks: the paper's future-work extensions and memory sweeps.

Section 7: "Future work will address data management within a kernel,
as well as, data and results reuse among clusters assigned to different
sets of the FB when the architecture allows it."  The cross-set
retention extension implements the second item behind an architecture
flag; these benchmarks quantify it against same-set-only retention.

The FB-size sweep densifies the paper's two-point memory comparisons
(E1/E1*, MPEG/MPEG*, ATR-FI/ATR-FI*) into full curves and asserts
their monotone shape.
"""

import pytest

from repro.analysis.ablation import cross_set_ablation
from repro.analysis.sweep import render_sweep, sweep_fb_sizes
from repro.units import kwords
from repro.workloads.spec import paper_experiments

_SPECS = {spec.id: spec for spec in paper_experiments()}


@pytest.mark.parametrize("experiment_id", ["ATR-SLD**", "MPEG", "E1*"])
def test_cross_set_retention_extension(benchmark, experiment_id):
    """Cross-set retention never hurts, and decisively rescues the
    schedules whose sharing straddles the two FB sets (ATR-SLD**)."""
    spec = _SPECS[experiment_id]
    results = benchmark(cross_set_ablation, spec)
    by_variant = {result.variant: result for result in results}
    same = by_variant["retention=same-set"]
    cross = by_variant["retention=cross-set"]
    assert same.feasible and cross.feasible
    assert cross.total_cycles <= same.total_cycles
    assert cross.data_words <= same.data_words
    if experiment_id == "ATR-SLD**":
        # The ** schedule split the correlators across sets: same-set
        # retention lost the template bank, cross-set wins it back.
        assert cross.total_cycles < same.total_cycles * 0.75
        assert cross.kept_items > same.kept_items
    print(
        f"\n{spec.id}: same-set={same.total_cycles}cyc/"
        f"{same.data_words}w  cross-set={cross.total_cycles}cyc/"
        f"{cross.data_words}w"
    )


@pytest.mark.parametrize("experiment_id", ["ATR-FI", "MPEG"])
def test_fb_size_sweep_shape(benchmark, experiment_id):
    """A bigger memory buys a larger RF and never a slower CDS — the
    curve the paper samples at two points."""
    spec = _SPECS[experiment_id]
    application, clustering = spec.build()
    sizes = [kwords(k) for k in (1, 1.5, 2, 3, 4, 6, 8)]

    points = benchmark.pedantic(
        sweep_fb_sizes, args=(application, clustering, sizes),
        rounds=1, iterations=1,
    )
    feasible = [p for p in points if p.ds_feasible]
    assert len(feasible) >= 4
    rf_values = [p.rf for p in feasible]
    assert rf_values == sorted(rf_values), "RF must grow with memory"
    # Makespan is monotone up to partial-round effects: a deeper RF
    # that does not divide the iteration count wastes a fraction of the
    # last round, so allow small (<2%) local regressions.
    cycles = [p.cds_cycles for p in feasible]
    assert all(b <= a * 1.02 for a, b in zip(cycles, cycles[1:])), \
        "CDS makespan grows materially with memory"
    assert cycles[-1] < cycles[0]
    print("\n" + render_sweep(points, title=f"sweep {spec.id}"))


def test_sweep_exposes_feasibility_frontier(benchmark):
    """Below the smallest cluster peak nothing schedules; the sweep
    reports that instead of raising."""
    spec = _SPECS["MPEG"]
    application, clustering = spec.build()
    points = benchmark.pedantic(
        sweep_fb_sizes,
        args=(application, clustering, [512, kwords(1), kwords(2)]),
        rounds=1, iterations=1,
    )
    assert not points[0].ds_feasible          # 512 words: nothing fits
    assert points[1].ds_feasible              # 1K: DS fits...
    assert not points[1].basic_feasible       # ...but Basic does not
    assert points[2].basic_feasible           # 2K: everything fits
