"""Benchmark: the paper's MPEG feasibility claim.

"Basic Scheduler cannot execute MPEG if memory size is 1K.  Whereas,
the Data Scheduler and the Complete Data Scheduler achieve MPEG
execution with memory size less than 1K."
"""

import pytest

from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.mpeg import mpeg


def test_basic_infeasible_at_1k(benchmark):
    application, clustering = mpeg()
    architecture = Architecture.m1("1K")

    def attempt():
        try:
            BasicScheduler(architecture).schedule(application, clustering)
        except InfeasibleScheduleError as exc:
            return exc
        return None

    error = benchmark(attempt)
    assert error is not None, "Basic Scheduler should fail MPEG at 1K"
    assert error.required > architecture.fb_set_words


@pytest.mark.parametrize("scheduler_cls", [DataScheduler,
                                           CompleteDataScheduler])
def test_ds_and_cds_feasible_below_1k(benchmark, scheduler_cls):
    """Replacement shrinks the peak enough to run below 1K words."""
    application, clustering = mpeg()
    architecture = Architecture.m1(1000)  # strictly less than 1K = 1024

    schedule = benchmark(
        scheduler_cls(architecture).schedule, application, clustering
    )
    assert schedule.rf >= 1
    for plan in schedule.cluster_plans:
        assert plan.peak_occupancy <= 1000


def test_feasibility_threshold_is_tight(benchmark):
    """Locate the exact Basic threshold: the largest cluster footprint."""
    from repro.core.dataflow import analyze_dataflow
    from repro.core.metrics import cluster_footprint

    application, clustering = mpeg()
    dataflow = analyze_dataflow(application, clustering)
    threshold = benchmark(
        lambda: max(
            cluster_footprint(dataflow, c.index) for c in clustering
        )
    )
    BasicScheduler(Architecture.m1(threshold)).schedule(
        application, clustering
    )
    with pytest.raises(InfeasibleScheduleError):
        BasicScheduler(Architecture.m1(threshold - 1)).schedule(
            application, clustering
        )
