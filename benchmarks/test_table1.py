"""Benchmark: regenerate every row of the paper's Table 1.

For each of the twelve experiments the benchmark runs the complete
comparison (Basic / Data / Complete Data Scheduler: schedule, lower,
simulate) and asserts the reproduced *shape*:

* the reuse factor equals the paper's ``RF`` column;
* the Complete Data Scheduler is at least as good as the Data
  Scheduler, which is at least as good as the Basic Scheduler;
* where the paper reports a strictly positive ``DT``, the measured
  data-transfer saving is strictly positive too.

Absolute percentages are printed for EXPERIMENTS.md but only checked
loosely (the substrate is a simulator, not the authors' testbed).
"""

import pytest

from repro.analysis.compare import compare_experiment
from repro.workloads.spec import paper_experiments

_SPECS = {spec.id: spec for spec in paper_experiments()}


@pytest.mark.parametrize("experiment_id", list(_SPECS))
def test_table1_row(benchmark, experiment_id):
    spec = _SPECS[experiment_id]
    row = benchmark(compare_experiment, spec)

    assert row.basic.feasible, f"{spec.id}: Basic infeasible at paper FB"
    assert row.ds.feasible and row.cds.feasible

    # RF column reproduced exactly.
    assert row.rf == spec.paper_rf, (
        f"{spec.id}: measured RF={row.rf}, paper RF={spec.paper_rf}"
    )

    # Who wins: CDS >= DS >= Basic (the paper's central claim).
    ds_pct = row.ds_improvement_pct
    cds_pct = row.cds_improvement_pct
    assert cds_pct >= ds_pct - 1e-9, f"{spec.id}: CDS worse than DS"
    assert cds_pct > 0, f"{spec.id}: CDS does not beat Basic"
    assert ds_pct >= -1e-9, f"{spec.id}: DS slower than Basic"

    # DT: the Complete Data Scheduler avoids data transfers wherever
    # the paper reports a saving.
    if spec.paper_dt_words and spec.paper_dt_words > 0 and row.cds.schedule.keeps:
        assert row.dt_words > 0, f"{spec.id}: no transfers avoided"

    print(
        f"\n{spec.id:<10} FB={spec.fb:<3} RF={row.rf:>2} "
        f"DT={row.dt_words:>5}w/iter  "
        f"DS={ds_pct:5.1f}% (paper {spec.paper_ds_pct:.0f}%)  "
        f"CDS={cds_pct:5.1f}% (paper {spec.paper_cds_pct:.0f}%)"
    )


def test_table1_orderings_within_families(benchmark):
    """Cross-row shape: a bigger frame buffer increases RF and never
    hurts the improvements (E1->E1*, MPEG->MPEG*, ATR-FI->ATR-FI*)."""

    def build():
        return {
            key: compare_experiment(_SPECS[key])
            for key in ("E1", "E1*", "MPEG", "MPEG*", "ATR-FI", "ATR-FI*")
        }

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for small, large in (("E1", "E1*"), ("MPEG", "MPEG*"),
                         ("ATR-FI", "ATR-FI*")):
        assert rows[large].rf > rows[small].rf
        assert rows[large].cds_improvement_pct > \
            rows[small].cds_improvement_pct
