# Developer entry points. `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint analyze ruff mypy bench bench-quick trace-demo fuzz fuzz-quick batch-check codegen-check gap-check cache-smoke serve-smoke

check: test ruff mypy lint analyze fuzz-quick batch-check codegen-check gap-check cache-smoke serve-smoke

# Scheduler-service smoke: boot `repro serve` as a real subprocess,
# fire a concurrent zipf-skewed loadgen burst at it, and gate on
# healthz + zero errors + cache hit-rate (the --check assertions,
# which include at least one cached replay).
serve-smoke:
	rm -rf .serve-smoke-cache
	@set -e; \
	$(PYTHON) -m repro.cli serve --port 8799 \
		--cache-dir .serve-smoke-cache --mode thread --jobs 4 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		if $(PYTHON) -c "import socket; socket.create_connection(('127.0.0.1', 8799), 0.5).close()" 2>/dev/null; then break; fi; \
		sleep 0.2; \
	done; \
	$(PYTHON) -m repro.cli loadgen --host 127.0.0.1 --port 8799 \
		--clients 100 --requests 3 --distinct 8 --check
	rm -rf .serve-smoke-cache

# Persistent-cache smoke: fill a throwaway cache directory, check the
# stats/clear plumbing end to end.
cache-smoke:
	rm -rf .cache-smoke
	$(PYTHON) -m repro.cli corpus --seeds 3 --cache-dir .cache-smoke > /dev/null
	$(PYTHON) -m repro.cli cache stats --cache-dir .cache-smoke
	$(PYTHON) -m repro.cli cache clear --cache-dir .cache-smoke
	rm -rf .cache-smoke

test:
	$(PYTHON) -m pytest -x -q

# Scheduler-output static analysis over every bundled experiment, all
# three schedulers. Fails on any error-severity diagnostic.
lint:
	$(PYTHON) -m repro.cli lint all --scheduler basic
	$(PYTHON) -m repro.cli lint all --scheduler ds
	$(PYTHON) -m repro.cli lint all --scheduler cds

# Timing-aware hazard analysis: every experiment x scheduler under the
# sound DMA orderings, plus the pinned fuzz reproducers, must be free
# of HAZ findings.  The JSON reports are CI artifacts.
analyze:
	$(PYTHON) -m repro.cli analyze all --scheduler all --policy sound \
		--output analyze-report.json
	$(PYTHON) -m repro.cli analyze corpus --policy sound \
		--output analyze-corpus-report.json

# Differential fuzzing: adversarial workload regimes cross-checked by
# the oracle stack.  `fuzz-quick` (CI) round-robins seeds across the
# regime matrix; failures are shrunk and written to fuzz-failures/,
# which CI uploads as an artifact.
fuzz:
	$(PYTHON) -m repro.cli fuzz --seeds 500 --jobs 0 \
		--failures-dir fuzz-failures

fuzz-quick:
	$(PYTHON) -m repro.cli fuzz --seeds 60 --quick --jobs 0 \
		--failures-dir fuzz-failures

# Batch-compiler equivalence gate: the property suite (500+ case fuzz
# matrix, paper experiments, batch-shape edge cases), then a wide
# batchcompile-oracle campaign — every generated case compiled by the
# structure-of-arrays engine and cross-checked byte-for-byte against
# the reference schedulers.  Failures shrink into fuzz-batch-failures/
# (a CI artifact).
batch-check:
	$(PYTHON) -m pytest tests/schedule/test_batch_equivalence.py -q
	$(PYTHON) -m repro.cli fuzz --seeds 10000 --quick --jobs 0 \
		--no-functional --oracle batchcompile \
		--failures-dir fuzz-batch-failures

# Templated-codegen equivalence gate: the golden property suite (500+
# program fuzz matrix, paper experiments, broken-schedule fallback,
# sequence-protocol edge cases), then a wide progequiv-oracle campaign
# — every generated schedule lowered by both codegen backends and
# cross-checked byte-for-byte, violation lists included.  Failures
# shrink into fuzz-codegen-failures/ (a CI artifact).
codegen-check:
	$(PYTHON) -m pytest tests/codegen/test_templated_equivalence.py -q
	$(PYTHON) -m repro.cli fuzz --seeds 5000 --quick --jobs 0 \
		--no-functional --oracle progequiv \
		--failures-dir fuzz-codegen-failures

# Greedy-vs-exact optimality gate: a budgeted 500-seed exactgap
# campaign (every case scheduled by both the greedy CDS and the exact
# branch-and-bound solver; exact must never lose and feasibility
# verdicts must match byte-for-byte), then the gap table over the
# paper experiments, the pinned corpus and a seeded sweep.  The JSON
# table (gap-table.json) is a CI artifact; failures shrink into
# fuzz-gap-failures/.
gap-check:
	$(PYTHON) -m repro.cli fuzz --seeds 500 --quick --jobs 0 \
		--no-functional --oracle exactgap \
		--failures-dir fuzz-gap-failures
	$(PYTHON) -m repro.cli gap --seeds 25 --output gap-table.json

# Full pipeline benchmark; refreshes the committed baseline.  The
# speedup column diffs against the recorded BENCH_baseline.json
# (refresh it with `repro bench --baseline BENCH_baseline.json
# --update-baseline` when re-anchoring the trajectory).
bench:
	$(PYTHON) -m repro.cli bench --output BENCH_pipeline.json \
		--service-output BENCH_service.json \
		--baseline BENCH_baseline.json

# CI's quick-mode benchmark, gated against the committed baseline.
bench-quick:
	$(PYTHON) -m repro.cli bench --quick --output BENCH_quick.json \
		--service-output BENCH_service_quick.json \
		--baseline BENCH_baseline.json \
		--compare BENCH_pipeline.json --max-regression 25

# Sample Chrome trace_event export — open trace_ATR-FI.json at
# https://ui.perfetto.dev or in chrome://tracing.
trace-demo:
	$(PYTHON) -m repro.cli trace ATR-FI --output trace_ATR-FI.json

# ruff / mypy run only where installed — the pinned container image
# ships neither, and nothing may be pip-installed into it.
ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping"; \
	fi

mypy:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping"; \
	fi
