# Developer entry points. `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint ruff mypy bench bench-quick trace-demo

check: test ruff mypy lint

test:
	$(PYTHON) -m pytest -x -q

# Scheduler-output static analysis over every bundled experiment, all
# three schedulers. Fails on any error-severity diagnostic.
lint:
	$(PYTHON) -m repro.cli lint all --scheduler basic
	$(PYTHON) -m repro.cli lint all --scheduler ds
	$(PYTHON) -m repro.cli lint all --scheduler cds

# Full pipeline benchmark; refreshes the committed baseline.
bench:
	$(PYTHON) -m repro.cli bench --output BENCH_pipeline.json

# CI's quick-mode benchmark, gated against the committed baseline.
bench-quick:
	$(PYTHON) -m repro.cli bench --quick --output BENCH_quick.json \
		--compare BENCH_pipeline.json --max-regression 25

# Sample Chrome trace_event export — open trace_ATR-FI.json at
# https://ui.perfetto.dev or in chrome://tracing.
trace-demo:
	$(PYTHON) -m repro.cli trace ATR-FI --output trace_ATR-FI.json

# ruff / mypy run only where installed — the pinned container image
# ships neither, and nothing may be pip-installed into it.
ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping"; \
	fi

mypy:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping"; \
	fi
