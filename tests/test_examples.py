"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3
