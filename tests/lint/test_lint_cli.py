"""The ``repro lint`` CLI subcommand: text/JSON output and exit codes."""

import json

import pytest

from repro.cli import main


def test_lint_clean_experiment_exits_zero(capsys):
    assert main(["lint", "E1"]) == 0
    out = capsys.readouterr().out
    assert "lint report: E1 (cds)" in out
    assert "clean: no findings" in out


def test_lint_verbose_lists_rules(capsys):
    assert main(["lint", "E1", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "rules checked:" in out
    assert "SCHED003" in out


def test_lint_json_payload(capsys):
    assert main(["lint", "E1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "E1"
    assert payload["scheduler"] == "cds"
    assert payload["clean"] is True
    assert payload["summary"]["errors"] == 0
    assert len(payload["summary"]["rules_checked"]) >= 10


def test_lint_corrupt_exits_nonzero_with_structured_json(capsys):
    assert main(["lint", "E1", "--corrupt", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["summary"]["errors"] > 0
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "SCHED003" in codes and "PROG001" in codes
    first = payload["diagnostics"][0]
    assert {"code", "severity", "layer", "location", "message",
            "cost_words", "details"} <= set(first)


def test_lint_corrupt_text_mode_exits_nonzero(capsys):
    assert main(["lint", "E1", "--corrupt"]) == 1
    out = capsys.readouterr().out
    assert "error[SCHED003]" in out


def test_lint_disable_suppresses_rule(capsys):
    code = main([
        "lint", "E1", "--corrupt",
        "--disable", "SCHED003", "--disable", "PROG001",
        "--disable", "PROG004",
    ])
    out = capsys.readouterr().out
    assert "SCHED003" not in out
    assert "suppressed" in out
    assert code == 0


def test_lint_severity_override(capsys):
    code = main([
        "lint", "E1", "--corrupt", "--json",
        "--severity", "SCHED003=info", "--severity", "PROG001=info",
        "--severity", "PROG004=info",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["infos"] > 0


def test_lint_bad_severity_arg_exits():
    with pytest.raises(SystemExit):
        main(["lint", "E1", "--severity", "SCHED003"])


def test_lint_all_produces_report_per_target(capsys):
    assert main(["lint", "all", "--scheduler", "basic"]) in (0, 1)
    out = capsys.readouterr().out
    assert "lint report: E1 (basic)" in out
    assert "lint report: WAVELET (basic)" in out


def test_lint_scheduler_selection(capsys):
    assert main(["lint", "MPEG", "--scheduler", "ds"]) == 0
    assert "lint report: MPEG (ds)" in capsys.readouterr().out
