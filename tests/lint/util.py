"""Shared helpers for the lint test suite.

The lint passes exist to catch *invalid* artifacts, but the library's
constructors validate eagerly — so these helpers build deliberately
broken applications, kernels and schedules by bypassing
``__post_init__`` (exactly the "assembled programmatically, pickled, or
mutated" artifacts the passes defend against).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Sequence, Set

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataobj import DataObject
from repro.core.kernel import Kernel
from repro.lint import DiagnosticCollector, LintContext, lint_context, run_passes
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.plan import Schedule


def mini_app():
    """Three kernels, one per cluster; shared data and a shared result.

    ``tbl`` is consumed by clusters 0 and 2 (both on FB set 0) — a
    SharedData candidate; ``r1`` is produced by cluster 0 and consumed
    by clusters 1 (set 1) and 2 (set 0) — a SharedResult candidate with
    a forced store.
    """
    application = (
        Application.build("mini", total_iterations=8)
        .data("d1", 64)
        .data("d2", 48)
        .data("tbl", 32, invariant=True)
        .kernel("k1", context_words=16, cycles=200,
                inputs=["d1", "tbl"], outputs=["r1"],
                result_sizes={"r1": 40})
        .kernel("k2", context_words=16, cycles=200,
                inputs=["r1", "d2"], outputs=["r2"],
                result_sizes={"r2": 40})
        .kernel("k3", context_words=16, cycles=200,
                inputs=["r2", "r1", "tbl"], outputs=["out"],
                result_sizes={"out": 32})
        .final("out")
        .finish()
    )
    return application, Clustering.per_kernel(application)


def cds_schedule(fb: str = "2K") -> Schedule:
    application, clustering = mini_app()
    return CompleteDataScheduler(Architecture.m1(fb)).schedule(
        application, clustering
    )


def lint_full(schedule: Schedule) -> DiagnosticCollector:
    """Run every pass over the schedule's full pipeline."""
    return run_passes(lint_context(schedule))


def lint_schedule_layers(schedule: Schedule) -> DiagnosticCollector:
    """Run only the application+schedule layers (no alloc / codegen —
    needed when the schedule is too broken to allocate or lower)."""
    context = LintContext(
        application=schedule.application,
        clustering=schedule.clustering,
        dataflow=schedule.dataflow,
        schedule=schedule,
    )
    return run_passes(context, layers=("application", "schedule"))


def codes_of(collector: DiagnosticCollector) -> Set[str]:
    return {diagnostic.code for diagnostic in collector.diagnostics}


def raw_kernel(name: str, *, context_words: int = 16, cycles: int = 100,
               inputs: Sequence[str] = (), outputs: Sequence[str] = ()):
    """A Kernel with validation bypassed."""
    kernel = object.__new__(Kernel)
    object.__setattr__(kernel, "name", name)
    object.__setattr__(kernel, "context_words", context_words)
    object.__setattr__(kernel, "cycles", cycles)
    object.__setattr__(kernel, "inputs", tuple(inputs))
    object.__setattr__(kernel, "outputs", tuple(outputs))
    object.__setattr__(kernel, "library_op", None)
    return kernel


def raw_object(name: str, size: int, *, invariant: bool = False):
    """A DataObject with validation bypassed."""
    obj = object.__new__(DataObject)
    object.__setattr__(obj, "name", name)
    object.__setattr__(obj, "size", size)
    object.__setattr__(obj, "invariant", invariant)
    object.__setattr__(obj, "element_shape", None)
    object.__setattr__(obj, "description", "")
    return obj


def raw_application(kernels: Iterable[Kernel],
                    objects: Dict[str, DataObject],
                    finals: Iterable[str] = (),
                    total_iterations: int = 4) -> Application:
    """An Application with validation bypassed."""
    application = object.__new__(Application)
    object.__setattr__(application, "name", "broken")
    object.__setattr__(application, "kernels", tuple(kernels))
    object.__setattr__(application, "objects", dict(objects))
    object.__setattr__(application, "final_outputs", frozenset(finals))
    object.__setattr__(application, "total_iterations", total_iterations)
    return application


def lint_app_only(application: Application) -> DiagnosticCollector:
    return run_passes(
        LintContext(application=application), layers=("application",)
    )


def replace_plan(schedule: Schedule, cluster_index: int, **changes) -> Schedule:
    """Copy of *schedule* with one plan's fields replaced."""
    plans = list(schedule.cluster_plans)
    plans[cluster_index] = dataclasses.replace(
        plans[cluster_index], **changes
    )
    return dataclasses.replace(schedule, cluster_plans=tuple(plans))
