"""End-to-end lint behaviour: runner targets, property-based
cleanliness of scheduler output, strict mode, allocator debug flag."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.allocator import FrameBufferAllocator
from repro.alloc.free_list import FreeBlockList
from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError, LintError, ReproError
from repro.lint import (
    corrupt_schedule,
    lint_context,
    lint_experiment,
    lint_targets,
    resolve_target,
    run_passes,
)
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.random_gen import random_application

from tests.lint.util import cds_schedule, codes_of, mini_app


# -- runner / targets -----------------------------------------------------

def test_lint_targets_cover_table1_and_wavelet():
    ids = [target.id for target in lint_targets()]
    assert "MPEG" in ids and "ATR-SLD" in ids and "WAVELET" in ids
    assert len(ids) == len(set(ids))


def test_resolve_target_is_case_insensitive():
    assert resolve_target("mpeg").id == "MPEG"
    with pytest.raises(ReproError, match="unknown lint target"):
        resolve_target("nonsense")


@pytest.mark.parametrize("name", ["E1", "MPEG", "ATR-SLD", "WAVELET"])
def test_bundled_experiments_are_error_free(name):
    _, collector = lint_experiment(name)
    assert not collector.has_errors
    assert len(collector.rules_checked) >= 10


def test_lint_experiment_suppress_and_override():
    _, collector = lint_experiment(
        "E1", corrupt=True, suppress=("SCHED003", "PROG001")
    )
    assert collector.suppressed_count > 0
    assert "SCHED003" not in codes_of(collector)


def test_corrupt_schedule_triggers_plan_and_program_rules():
    _, collector = lint_experiment("E1", corrupt=True)
    codes = codes_of(collector)
    assert "SCHED003" in codes  # plan layer sees the missing load
    assert "PROG001" in codes  # program layer sees the use-before-load
    assert collector.has_errors


def test_corrupt_schedule_requires_a_load():
    schedule = cds_schedule()
    corrupted = corrupt_schedule(schedule)
    dropped = (
        sum(len(p.loads) for p in schedule.cluster_plans)
        - sum(len(p.loads) for p in corrupted.cluster_plans)
    )
    assert dropped == 1


# -- property: scheduler output is always lint-clean ----------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=20000),
       st.sampled_from(["1K", "2K", "8K"]))
def test_cds_schedules_are_lint_clean(seed, fb):
    """The Complete Data Scheduler never emits a schedule its own
    static analysis rejects — over the full pipeline (schedule,
    allocation, program)."""
    application, clustering = random_application(seed, iterations=4)
    try:
        schedule = CompleteDataScheduler(Architecture.m1(fb)).schedule(
            application, clustering
        )
    except InfeasibleScheduleError:
        return
    collector = run_passes(lint_context(schedule))
    assert not collector.has_errors, "\n".join(
        str(d) for d in collector.errors
    )


# -- strict mode ----------------------------------------------------------

def test_strict_lint_passes_on_valid_schedule():
    application, clustering = mini_app()
    scheduler = CompleteDataScheduler(
        Architecture.m1("2K"), ScheduleOptions(strict_lint=True)
    )
    schedule = scheduler.schedule(application, clustering)
    assert schedule.rf >= 1


def test_strict_lint_raises_on_broken_schedule():
    class Sabotaged(CompleteDataScheduler):
        def _schedule(self, dataflow):
            return corrupt_schedule(super()._schedule(dataflow))

    application, clustering = mini_app()
    scheduler = Sabotaged(
        Architecture.m1("2K"), ScheduleOptions(strict_lint=True)
    )
    with pytest.raises(LintError, match="strict lint") as excinfo:
        scheduler.schedule(application, clustering)
    assert excinfo.value.diagnostics
    assert any(d.code == "SCHED003" for d in excinfo.value.diagnostics)


def test_strict_lint_off_by_default():
    class Sabotaged(CompleteDataScheduler):
        def _schedule(self, dataflow):
            return corrupt_schedule(super()._schedule(dataflow))

    application, clustering = mini_app()
    schedule = Sabotaged(Architecture.m1("2K")).schedule(
        application, clustering
    )  # no raise: the self-check is opt-in
    assert schedule is not None


# -- allocator debug flag -------------------------------------------------

def test_debug_invariants_checks_free_list(monkeypatch):
    schedule = cds_schedule()
    calls = {"count": 0}
    original = FreeBlockList.check_invariants

    def counting(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(FreeBlockList, "check_invariants", counting)
    FrameBufferAllocator(schedule, debug_invariants=True).allocate()
    checked = calls["count"]
    assert checked > 0

    calls["count"] = 0
    FrameBufferAllocator(schedule, debug_invariants=False).allocate()
    assert calls["count"] == 0  # explicit opt-out (hot path stays lean)

    # The suite's conftest flips the class default on; production code
    # (no kwarg) inherits whatever the default says.
    calls["count"] = 0
    default = FrameBufferAllocator.default_debug_invariants
    FrameBufferAllocator(schedule).allocate()
    assert (calls["count"] > 0) == default


def test_debug_invariants_does_not_change_result():
    schedule = cds_schedule()
    plain = FrameBufferAllocator(schedule).allocate()
    checked = FrameBufferAllocator(
        schedule, debug_invariants=True
    ).allocate()
    for a, b in zip(plain, checked):
        assert a.records == b.records
        assert a.peak_words == b.peak_words
