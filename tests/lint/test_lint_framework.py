"""Diagnostics, collector, registry and reporter behaviour."""

import json

import pytest

from repro.lint import (
    Diagnostic,
    DiagnosticCollector,
    LintContext,
    RULES,
    Severity,
    lint_pass,
    register_rule,
    render_json,
    render_text,
    run_passes,
)
from repro.lint.reporters import severity_overrides_from_args

from tests.lint.util import cds_schedule, lint_full, mini_app


def _diag(code="SCHED001", severity=Severity.ERROR, cost=0):
    return Diagnostic(
        code=code, severity=severity, layer="schedule",
        location="cluster Cl1", message="boom", cost_words=cost,
    )


# -- Severity -------------------------------------------------------------

def test_severity_parse_and_rank():
    assert Severity.parse(" Error ") is Severity.ERROR
    assert Severity.parse("WARNING") is Severity.WARNING
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")


# -- DiagnosticCollector --------------------------------------------------

def test_collector_accumulates_and_sorts():
    collector = DiagnosticCollector()
    collector.add(_diag("SCHED007", Severity.WARNING, cost=10))
    collector.add(_diag("SCHED001", Severity.ERROR, cost=5))
    assert len(collector) == 2
    assert collector.has_errors
    assert collector.total_cost_words == 15
    assert [d.code for d in collector.sorted()] == ["SCHED001", "SCHED007"]


def test_collector_severity_override():
    collector = DiagnosticCollector(
        severity_overrides={"SCHED007": Severity.ERROR}
    )
    stored = collector.add(_diag("SCHED007", Severity.WARNING))
    assert stored is not None and stored.severity is Severity.ERROR
    assert collector.has_errors


def test_collector_suppression():
    collector = DiagnosticCollector(suppress=("SCHED001",))
    assert collector.add(_diag("SCHED001")) is None
    assert not collector.diagnostics
    assert collector.suppressed_count == 1


def test_empty_collector_is_not_replaced_by_run_passes():
    """Regression: DiagnosticCollector has __len__, so an empty
    collector is falsy — run_passes must not `or` it away."""
    application, clustering = mini_app()
    collector = DiagnosticCollector()
    returned = run_passes(
        LintContext(application=application), collector=collector
    )
    assert returned is collector
    assert collector.rules_checked  # passes actually ran into it


def test_diagnostic_json_and_str():
    diagnostic = _diag(cost=32)
    payload = diagnostic.to_json()
    assert payload["code"] == "SCHED001"
    assert payload["severity"] == "error"
    assert "[32w]" in str(diagnostic)


# -- registry -------------------------------------------------------------

def test_register_rule_rejects_duplicates_and_bad_layers():
    with pytest.raises(ValueError, match="duplicate"):
        register_rule("SCHED001", "schedule", Severity.ERROR, "x", "y")
    with pytest.raises(ValueError, match="unknown lint layer"):
        register_rule("ZZZ001", "nonsense", Severity.ERROR, "x", "y")


def test_lint_pass_rejects_unregistered_rules():
    with pytest.raises(ValueError, match="unregistered rule"):
        @lint_pass("bogus", layer="schedule", rules=("NOPE001",))
        def _pass(context, emit):  # pragma: no cover
            pass


def test_run_passes_rejects_unknown_layer():
    application, _ = mini_app()
    with pytest.raises(ValueError, match="unknown lint layers"):
        run_passes(
            LintContext(application=application), layers=("bogus",)
        )


def test_passes_skip_missing_artifacts():
    application, _ = mini_app()
    collector = run_passes(LintContext(application=application))
    checked = set(collector.rules_checked)
    assert any(code.startswith("APP") for code in checked)
    assert not any(code.startswith("SCHED") for code in checked)
    assert not any(code.startswith("PROG") for code in checked)


def test_rule_catalogue_covers_four_layers():
    layers = {rule.layer for rule in RULES.values()}
    assert layers == {"application", "schedule", "allocation", "program"}
    assert len(RULES) >= 10
    assert all(rule.paper_ref for rule in RULES.values())


# -- reporters ------------------------------------------------------------

def test_render_text_clean_and_verbose():
    collector = lint_full(cds_schedule())
    text = render_text(collector, title="mini", verbose=True)
    assert "lint report: mini" in text
    assert "clean: no findings" in text
    assert "rules checked:" in text
    assert "SCHED001" in text


def test_render_text_groups_by_layer():
    collector = DiagnosticCollector()
    collector.add(_diag("SCHED001", Severity.ERROR))
    text = render_text(collector)
    assert "-- schedule" in text
    assert "1 error(s)" in text


def test_render_json_is_serialisable():
    collector = lint_full(cds_schedule())
    payload = render_json(collector, extra={"experiment": "mini"})
    assert payload["clean"] is True
    assert payload["experiment"] == "mini"
    json.dumps(payload)  # must be JSON-safe


def test_json_report_is_deterministically_ordered():
    """to_json orders diagnostics by (code, location, message) — a
    content-determined total order, independent of emission order."""
    first = DiagnosticCollector()
    second = DiagnosticCollector()
    diags = [
        Diagnostic(code="SCHED007", severity=Severity.WARNING,
                   layer="schedule", location="cluster Cl2",
                   message="b", cost_words=4),
        Diagnostic(code="SCHED001", severity=Severity.ERROR,
                   layer="schedule", location="cluster Cl9",
                   message="a", cost_words=2),
        Diagnostic(code="SCHED001", severity=Severity.ERROR,
                   layer="schedule", location="cluster Cl1",
                   message="c", cost_words=1),
    ]
    for diagnostic in diags:
        first.add(diagnostic)
    for diagnostic in reversed(diags):
        second.add(diagnostic)
    assert first.to_json() == second.to_json()
    ordered = first.to_json()["diagnostics"]
    assert [(d["code"], d["location"]) for d in ordered] == [
        ("SCHED001", "cluster Cl1"),
        ("SCHED001", "cluster Cl9"),
        ("SCHED007", "cluster Cl2"),
    ]


def test_json_summary_per_severity_block():
    collector = DiagnosticCollector()
    collector.add(_diag("SCHED001", Severity.ERROR, cost=5))
    collector.add(_diag("SCHED007", Severity.WARNING, cost=10))
    collector.add(_diag("SCHED007", Severity.WARNING, cost=3))
    summary = collector.to_json()["summary"]
    assert summary["by_severity"] == {
        "error": {"count": 1, "cost_words": 5},
        "warning": {"count": 2, "cost_words": 13},
        "info": {"count": 0, "cost_words": 0},
    }


def test_severity_overrides_from_args():
    overrides = severity_overrides_from_args(
        ["sched007=error", "ALLOC005 = warning"]
    )
    assert overrides == {
        "SCHED007": Severity.ERROR,
        "ALLOC005": Severity.WARNING,
    }
    with pytest.raises(ValueError, match="CODE=LEVEL"):
        severity_overrides_from_args(["SCHED007"])
