"""docs/lint_rules.md must track the executable catalogue."""

import re
from pathlib import Path

from repro.lint import RULES

DOC = Path(__file__).resolve().parents[2] / "docs" / "lint_rules.md"


def test_every_rule_is_documented():
    text = DOC.read_text()
    documented = set(
        re.findall(r"\b(?:APP|SCHED|ALLOC|PROG|HAZ|DFA)\d{3}\b", text)
    )
    assert documented == set(RULES), (
        f"undocumented: {sorted(set(RULES) - documented)}; "
        f"stale: {sorted(documented - set(RULES))}"
    )


def test_documented_severities_match_registry():
    text = DOC.read_text()
    for code, rule in RULES.items():
        row = next(
            line for line in text.splitlines()
            if line.startswith(f"| {code} ")
        )
        assert f"| {rule.severity.value} |" in row, (
            f"{code}: doc row does not say severity {rule.severity.value!r}"
        )
