"""One deliberately-broken artifact per lint rule.

Every test corrupts exactly one aspect of an otherwise-valid pipeline
artifact and asserts that the corresponding rule code fires (other
codes may fire too — a corruption is usually visible from several
angles — so tests assert membership, not equality).
"""

import dataclasses

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.frame_buffer import Extent
from repro.codegen.generator import generate_program
from repro.codegen.verifier import collect_program_violations
from repro.core.dataflow import analyze_dataflow
from repro.core.reuse import SharedData
from repro.lint import LintContext, run_passes

from tests.lint.util import (
    cds_schedule,
    codes_of,
    lint_app_only,
    lint_full,
    lint_schedule_layers,
    mini_app,
    raw_application,
    raw_kernel,
    raw_object,
    replace_plan,
)


# -- application layer ----------------------------------------------------

def test_app001_consumer_before_producer():
    kernels = [
        raw_kernel("k1", inputs=("x",), outputs=("x2",)),
        raw_kernel("k2", inputs=("d",), outputs=("x",)),
    ]
    objects = {name: raw_object(name, 16) for name in ("x", "x2", "d")}
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("x2",))
    )
    assert "APP001" in codes_of(collector)


def test_app002_undeclared_reference():
    kernels = [raw_kernel("k1", inputs=("ghost",), outputs=("out",))]
    objects = {"out": raw_object("out", 16)}
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("out",))
    )
    assert "APP002" in codes_of(collector)


def test_app002_unused_object_and_missing_final():
    kernels = [raw_kernel("k1", inputs=("d",), outputs=("out",))]
    objects = {
        "d": raw_object("d", 16),
        "out": raw_object("out", 16),
        "orphan": raw_object("orphan", 16),
    }
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("out", "nothing"))
    )
    messages = [d.message for d in collector.diagnostics]
    assert any("orphan" in m for m in messages)
    assert any("nothing" in m for m in messages)
    assert codes_of(collector) == {"APP002"}


def test_app003_dead_store_is_a_warning():
    kernels = [raw_kernel("k1", inputs=("d",), outputs=("out", "waste"))]
    objects = {
        "d": raw_object("d", 16),
        "out": raw_object("out", 16),
        "waste": raw_object("waste", 24),
    }
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("out",))
    )
    dead = [d for d in collector.diagnostics if d.code == "APP003"]
    assert len(dead) == 1
    assert dead[0].severity.value == "warning"
    assert dead[0].cost_words == 24


def test_app004_double_producer_and_invariant_result():
    kernels = [
        raw_kernel("k1", inputs=("d",), outputs=("x",)),
        raw_kernel("k2", inputs=("x",), outputs=("x", "inv")),
    ]
    objects = {
        "d": raw_object("d", 16),
        "x": raw_object("x", 16),
        "inv": raw_object("inv", 16, invariant=True),
    }
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("inv",))
    )
    app004 = [d.message for d in collector.diagnostics if d.code == "APP004"]
    assert any("single assignment" in m for m in app004)
    assert any("iteration-invariant" in m for m in app004)


def test_app004_nonpositive_size():
    kernels = [raw_kernel("k1", inputs=("d",), outputs=("out",))]
    objects = {"d": raw_object("d", 0), "out": raw_object("out", 16)}
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("out",))
    )
    assert "APP004" in codes_of(collector)


def test_app005_nonpositive_contexts():
    kernels = [
        raw_kernel("k1", context_words=0, inputs=("d",), outputs=("out",))
    ]
    objects = {"d": raw_object("d", 16), "out": raw_object("out", 16)}
    collector = lint_app_only(
        raw_application(kernels, objects, finals=("out",))
    )
    assert "APP005" in codes_of(collector)


def test_app006_stale_dataflow():
    application, clustering = mini_app()
    dataflow = analyze_dataflow(application, clustering)
    # Same topology, one size changed: the dataflow no longer matches.
    changed = (
        type(application).build("mini2", total_iterations=8)
        .data("d1", 64).data("d2", 48).data("tbl", 96, invariant=True)
        .kernel("k1", context_words=16, cycles=200,
                inputs=["d1", "tbl"], outputs=["r1"],
                result_sizes={"r1": 40})
        .kernel("k2", context_words=16, cycles=200,
                inputs=["r1", "d2"], outputs=["r2"],
                result_sizes={"r2": 40})
        .kernel("k3", context_words=16, cycles=200,
                inputs=["r2", "r1", "tbl"], outputs=["out"],
                result_sizes={"out": 32})
        .final("out").finish()
    )
    context = LintContext(
        application=changed,
        clustering=clustering,
        dataflow=dataflow,
    )
    collector = run_passes(context, layers=("application",))
    assert "APP006" in codes_of(collector)
    assert any(d.cost_words == 64 for d in collector.diagnostics
               if d.code == "APP006")


# -- schedule layer -------------------------------------------------------

def test_sched001_occupancy_over_capacity():
    schedule = cds_schedule()
    broken = replace_plan(
        schedule, 0, peak_occupancy=schedule.fb_set_words + 100
    )
    collector = lint_schedule_layers(broken)
    assert "SCHED001" in codes_of(collector)
    over = [d for d in collector.diagnostics if d.code == "SCHED001"]
    assert over[0].cost_words == 100


def test_sched002_occupancy_mismatch():
    schedule = cds_schedule()
    broken = replace_plan(
        schedule, 0, peak_occupancy=schedule.cluster_plans[0].peak_occupancy - 8
    )
    collector = lint_schedule_layers(broken)
    codes = codes_of(collector)
    assert "SCHED002" in codes
    assert "SCHED001" not in codes


def test_sched003_dropped_load():
    schedule = cds_schedule()
    plan = schedule.cluster_plans[0]
    assert plan.loads
    broken = replace_plan(schedule, 0, loads=plan.loads[1:])
    assert "SCHED003" in codes_of(lint_schedule_layers(broken))


def test_sched003_kept_input_without_keep():
    schedule = cds_schedule()
    plan = schedule.cluster_plans[1]
    moved = plan.loads[0]
    broken = replace_plan(
        schedule, 1,
        loads=plan.loads[1:],
        kept_inputs=plan.kept_inputs + (moved,),
    )
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED003"]
    assert any("no keep decision serves" in d.message for d in found)


def test_sched004_double_load():
    schedule = cds_schedule()
    plan = schedule.cluster_plans[0]
    broken = replace_plan(schedule, 0, loads=plan.loads + (plan.loads[0],))
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED004"]
    assert any("twice in the load list" in d.message for d in found)


def test_sched004_load_of_non_input():
    schedule = cds_schedule()
    plan = schedule.cluster_plans[0]
    broken = replace_plan(schedule, 0, loads=plan.loads + ("out",))
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED004"]
    assert any("not an input" in d.message for d in found)


def test_sched005_missing_store():
    schedule = cds_schedule()
    index = next(
        plan.cluster_index for plan in schedule.cluster_plans if plan.stores
    )
    broken = replace_plan(schedule, index, stores=())
    assert "SCHED005" in codes_of(lint_schedule_layers(broken))


def test_sched006_double_store_and_foreign_store():
    schedule = cds_schedule()
    index = next(
        plan.cluster_index for plan in schedule.cluster_plans if plan.stores
    )
    plan = schedule.cluster_plans[index]
    broken = replace_plan(
        schedule, index, stores=plan.stores + (plan.stores[0], "d1")
    )
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED006"]
    assert any("double store" in d.message for d in found)
    assert any("not produced" in d.message for d in found)


def test_sched007_pointless_keep():
    schedule = cds_schedule()
    pointless = SharedData(
        name="d2", size=48, fb_set=1, clusters=(1,), invariant=False
    )
    broken = dataclasses.replace(
        schedule, keeps=schedule.keeps + (pointless,)
    )
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED007"]
    assert found and found[0].severity.value == "warning"


def test_sched008_keep_size_mismatch():
    schedule = cds_schedule()
    keeps = tuple(
        dataclasses.replace(keep, size=keep.size + 7)
        if isinstance(keep, SharedData) else keep
        for keep in schedule.keeps
    )
    broken = dataclasses.replace(schedule, keeps=keeps)
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED008"]
    assert any("the dataflow says" in d.message for d in found)


def test_sched008_keep_with_no_consumers():
    schedule = cds_schedule()
    empty = SharedData(
        name="tbl", size=32, fb_set=0, clusters=(), invariant=True
    )
    broken = dataclasses.replace(schedule, keeps=schedule.keeps + (empty,))
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED008"]
    assert any("no consumer clusters" in d.message for d in found)


def test_sched009_rf_below_achievable():
    schedule = cds_schedule()
    assert schedule.rf > 1
    broken = dataclasses.replace(schedule, rf=1)
    found = [d for d in lint_schedule_layers(broken).diagnostics
             if d.code == "SCHED009"]
    assert found and found[0].severity.value == "warning"
    assert found[0].cost_words > 0


def test_sched010_rf_above_iterations():
    schedule = cds_schedule()
    broken = dataclasses.replace(
        schedule, rf=schedule.application.total_iterations + 3
    )
    assert "SCHED010" in codes_of(lint_schedule_layers(broken))


def test_sched011_wrong_fb_set():
    schedule = cds_schedule()
    plan = schedule.cluster_plans[0]
    broken = replace_plan(schedule, 0, fb_set=1 - plan.fb_set)
    assert "SCHED011" in codes_of(lint_schedule_layers(broken))


def test_sched011_wrong_cluster_index():
    schedule = cds_schedule()
    plans = list(schedule.cluster_plans)
    plans[0], plans[1] = plans[1], plans[0]
    broken = dataclasses.replace(schedule, cluster_plans=tuple(plans))
    assert "SCHED011" in codes_of(lint_schedule_layers(broken))


def test_sched012_contexts_exceed_block():
    schedule = cds_schedule()
    broken = dataclasses.replace(schedule, context_block_words=8)
    assert "SCHED012" in codes_of(lint_schedule_layers(broken))


# -- allocation layer -----------------------------------------------------

def _allocations(schedule):
    return FrameBufferAllocator(schedule).allocate()


def _alloc_context(schedule, allocations):
    return LintContext(
        application=schedule.application,
        clustering=schedule.clustering,
        dataflow=schedule.dataflow,
        schedule=schedule,
        allocations=allocations,
    )


def _replace_record(allocation, index, **changes):
    allocation.records[index] = dataclasses.replace(
        allocation.records[index], **changes
    )


def test_alloc001_space_time_overlap():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    victim = set0.records[0]
    clone = dataclasses.replace(victim, instance=victim.instance + 90)
    set0.records.append(clone)
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    assert "ALLOC001" in codes_of(collector)


def test_alloc002_extent_out_of_bounds():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    _replace_record(
        set0, 0, extents=(Extent(set0.capacity_words - 4, 16),)
    )
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    found = [d for d in collector.diagnostics if d.code == "ALLOC002"]
    assert found and found[0].cost_words == 12


def test_alloc003_wrong_growth_direction():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    loads = set(schedule.cluster_plans[0].loads)
    index = next(
        i for i, record in enumerate(set0.records)
        if record.cluster_index == 0 and record.name in loads
    )
    flipped = {"high": "low", "low": "high"}[set0.records[index].direction]
    _replace_record(set0, index, direction=flipped)
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    assert "ALLOC003" in codes_of(collector)


def test_alloc004_split_placement():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    record = set0.records[0]
    extent = record.extents[0]
    assert extent.size >= 2
    half = extent.size // 2
    _replace_record(
        set0, 0,
        extents=(Extent(extent.start, half),
                 Extent(extent.start + half, extent.size - half)),
    )
    found = [
        d for d in run_passes(
            _alloc_context(schedule, (set0, set1)), layers=("allocation",)
        ).diagnostics
        if d.code == "ALLOC004"
    ]
    assert found and found[0].cost_words == extent.size


def test_alloc005_irregular_placement():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    _replace_record(set0, 0, regular=False)
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    found = [d for d in collector.diagnostics if d.code == "ALLOC005"]
    assert found and found[0].severity.value == "info"


def test_alloc006_peak_over_capacity():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    set0.capacity_words = set0.peak_words - 1
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    found = [d for d in collector.diagnostics if d.code == "ALLOC006"]
    assert found and found[0].cost_words == 1


def test_alloc007_backwards_lifetime():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    record = set0.records[0]
    _replace_record(set0, 0, free_step=record.alloc_step)
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    found = [d for d in collector.diagnostics if d.code == "ALLOC007"]
    assert any("not after" in d.message for d in found)


def test_alloc007_simultaneous_duplicate():
    schedule = cds_schedule()
    set0, set1 = _allocations(schedule)
    set0.records.append(set0.records[0])
    collector = run_passes(
        _alloc_context(schedule, (set0, set1)), layers=("allocation",)
    )
    found = [d for d in collector.diagnostics if d.code == "ALLOC007"]
    assert any("two live copies" in d.message for d in found)


# -- program layer --------------------------------------------------------

def _program(schedule):
    return generate_program(schedule)


def _replace_visit(program, index, **changes):
    visits = list(program.visits)
    visits[index] = dataclasses.replace(visits[index], **changes)
    return dataclasses.replace(program, visits=tuple(visits))


def test_prog001_use_before_load():
    program = _program(cds_schedule())
    index = next(i for i, ops in enumerate(program.visits) if ops.data_loads)
    broken = _replace_visit(
        program, index, data_loads=program.visits[index].data_loads[1:]
    )
    violations = collect_program_violations(broken)
    assert any(v.code == "PROG001" for v in violations)


def test_prog002_launch_without_contexts():
    program = _program(cds_schedule())
    broken = _replace_visit(program, 0, context_loads=())
    violations = collect_program_violations(broken)
    assert any(
        v.code == "PROG002" and "without contexts" in v.message
        for v in violations
    )


def test_prog003_store_of_external_data():
    from repro.codegen.ops import StoreData

    program = _program(cds_schedule())
    visit0 = program.visits[0]
    bogus = StoreData(
        name="d1", iteration=0, words=64, fb_set=visit0.visit.fb_set
    )
    broken = _replace_visit(program, 0, stores=visit0.stores + (bogus,))
    violations = collect_program_violations(broken)
    assert any(
        v.code == "PROG003" and "external data" in v.message
        for v in violations
    )


def test_prog004_skipped_iteration():
    program = _program(cds_schedule())
    broken = _replace_visit(
        program, 0, compute=program.visits[0].compute[1:]
    )
    violations = collect_program_violations(broken)
    assert any(
        v.code == "PROG004" and "executed 0 times" in v.message
        for v in violations
    )


def test_prog005_redundant_load():
    program = _program(cds_schedule())
    index = next(i for i, ops in enumerate(program.visits) if ops.data_loads)
    loads = program.visits[index].data_loads
    broken = _replace_visit(
        program, index, data_loads=loads + (loads[0],)
    )
    violations = collect_program_violations(broken)
    found = [v for v in violations if v.code == "PROG005"]
    assert found and found[0].cost_words == loads[0].words


def test_prog006_wrong_fb_set():
    program = _program(cds_schedule())
    visit0 = program.visits[0]
    flipped = dataclasses.replace(
        visit0.visit, fb_set=1 - visit0.visit.fb_set
    )
    broken = _replace_visit(program, 0, visit=flipped)
    violations = collect_program_violations(broken)
    assert any(v.code == "PROG006" for v in violations)


def test_program_pass_reemits_violations():
    schedule = cds_schedule()
    program = _program(schedule)
    index = next(i for i, ops in enumerate(program.visits) if ops.data_loads)
    broken = _replace_visit(
        program, index, data_loads=program.visits[index].data_loads[1:]
    )
    context = LintContext(application=schedule.application, program=broken)
    collector = run_passes(context, layers=("program",))
    assert "PROG001" in codes_of(collector)
    assert collector.has_errors


# -- clean baseline -------------------------------------------------------

def test_mini_app_pipeline_is_clean():
    collector = lint_full(cds_schedule())
    assert not collector.diagnostics
    assert len(collector.rules_checked) >= 10
    # All rule families were exercised.
    prefixes = {code.rstrip("0123456789") for code in collector.rules_checked}
    assert prefixes == {"APP", "SCHED", "ALLOC", "PROG", "HAZ", "DFA"}
