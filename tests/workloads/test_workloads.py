"""Tests for the paper's workloads and the random generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import Architecture
from repro.core.dataflow import analyze_dataflow
from repro.core.reuse import find_shared_data, find_shared_results
from repro.errors import WorkloadError
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.atr import atr_fi, atr_sld, atr_sld_star, atr_sld_star2
from repro.workloads.mpeg import mpeg, mpeg_functional
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments
from repro.workloads.synthetic import (
    SharedDataSpec,
    SharedResultSpec,
    e1,
    synthetic_chain,
)


class TestSyntheticChain:
    def test_structure(self):
        app, clustering = synthetic_chain(
            "t", n_clusters=3, kernels_per_cluster=2, iterations=4,
            input_words=32, inter_words=16, final_words=8,
            context_words=16, cycles=50,
        )
        assert len(clustering) == 3
        assert len(app.kernels) == 6
        assert len(app.final_outputs) == 3  # one final per cluster

    def test_variable_cluster_sizes(self):
        app, clustering = synthetic_chain(
            "t", n_clusters=2, kernels_per_cluster=[1, 3], iterations=4,
            input_words=32, inter_words=16, final_words=8,
            context_words=16, cycles=50,
        )
        assert clustering.sizes() == (1, 3)

    def test_shared_data_wiring(self):
        app, clustering = synthetic_chain(
            "t", n_clusters=4, kernels_per_cluster=1, iterations=4,
            input_words=32, inter_words=16, final_words=8,
            context_words=16, cycles=50,
            shared_data=(SharedDataSpec("tbl", 64, (0, 2)),),
        )
        dataflow = analyze_dataflow(app, clustering)
        shared = find_shared_data(dataflow)
        assert [item.name for item in shared] == ["tbl"]
        assert shared[0].clusters == (0, 2)

    def test_shared_result_wiring(self):
        app, clustering = synthetic_chain(
            "t", n_clusters=4, kernels_per_cluster=1, iterations=4,
            input_words=32, inter_words=16, final_words=8,
            context_words=16, cycles=50,
            shared_results=(SharedResultSpec(0, (2,), 24),),
        )
        dataflow = analyze_dataflow(app, clustering)
        results = find_shared_results(dataflow)
        assert len(results) == 1
        assert results[0].producer_cluster == 0

    def test_invalid_specs_rejected(self):
        with pytest.raises(WorkloadError):
            synthetic_chain(
                "t", n_clusters=2, kernels_per_cluster=1, iterations=4,
                input_words=32, inter_words=16, final_words=8,
                context_words=16, cycles=50,
                shared_data=(SharedDataSpec("tbl", 64, (0,)),),
            )
        with pytest.raises(WorkloadError):
            synthetic_chain(
                "t", n_clusters=2, kernels_per_cluster=1, iterations=4,
                input_words=32, inter_words=16, final_words=8,
                context_words=16, cycles=50,
                shared_results=(SharedResultSpec(1, (1,), 24),),
            )
        with pytest.raises(WorkloadError):
            synthetic_chain(
                "t", n_clusters=0, kernels_per_cluster=1, iterations=4,
                input_words=32, inter_words=16, final_words=8,
                context_words=16, cycles=50,
            )


class TestPaperWorkloads:
    def test_twelve_experiments(self):
        specs = paper_experiments()
        assert len(specs) == 12
        assert [s.id for s in specs][:4] == ["E1", "E1*", "E2", "E3"]

    def test_all_experiments_build_valid_apps(self):
        for spec in paper_experiments():
            application, clustering = spec.build()
            analyze_dataflow(application, clustering)  # validates

    def test_cds_feasible_on_every_row(self):
        from repro.schedule.complete import CompleteDataScheduler
        for spec in paper_experiments():
            application, clustering = spec.build()
            schedule = CompleteDataScheduler(
                Architecture.m1(spec.fb)
            ).schedule(application, clustering)
            assert schedule.rf >= 1, spec.id

    def test_rf_matches_paper_for_all_rows(self):
        """The headline calibration: the measured RF equals the paper's
        RF column on every Table-1 row."""
        for spec in paper_experiments():
            application, clustering = spec.build()
            schedule = DataScheduler(Architecture.m1(spec.fb)).schedule(
                application, clustering
            )
            assert schedule.rf == spec.paper_rf, spec.id

    def test_e1_star_is_same_app_bigger_fb(self):
        app1, cl1 = e1()
        specs = {s.id: s for s in paper_experiments()}
        assert specs["E1"].fb == "1K"
        assert specs["E1*"].fb == "2K"
        app2, _ = specs["E1*"].build()
        assert app1.kernel_names == app2.kernel_names

    def test_mpeg_has_retention_opportunities(self):
        application, clustering = mpeg()
        dataflow = analyze_dataflow(application, clustering)
        shared_data = find_shared_data(dataflow)
        shared_results = find_shared_results(dataflow)
        assert any(item.name == "ref_window" for item in shared_data)
        assert any(item.name == "qcoef" for item in shared_results)

    def test_atr_sld_template_bank_same_set(self):
        application, clustering = atr_sld()
        dataflow = analyze_dataflow(application, clustering)
        shared = find_shared_data(dataflow)
        assert any(item.name == "templates" for item in shared)

    def test_atr_sld_star2_breaks_template_sharing(self):
        """The ** schedule puts the correlators on different sets, so
        the bank is not retainable — the row's point."""
        application, clustering = atr_sld_star2()
        dataflow = analyze_dataflow(application, clustering)
        shared = find_shared_data(dataflow)
        assert not any(item.name == "templates" for item in shared)

    def test_mpeg_functional_impls_cover_all_kernels(self):
        application, clustering, impls = mpeg_functional()
        assert set(impls) == {k.name for k in application.kernels}


class TestRandomGenerator:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_always_valid(self, seed):
        application, clustering = random_application(seed)
        analyze_dataflow(application, clustering)  # raises if invalid
        assert len(clustering) >= 2

    def test_deterministic(self):
        first_app, first_cl = random_application(42)
        second_app, second_cl = random_application(42)
        assert first_app.kernel_names == second_app.kernel_names
        assert first_cl.sizes() == second_cl.sizes()

    def test_iterations_override(self):
        application, _ = random_application(7, iterations=5)
        assert application.total_iterations == 5
