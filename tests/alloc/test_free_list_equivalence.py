"""Property-based equivalence: bisect FreeBlockList vs. linear oracle.

The production :class:`~repro.alloc.free_list.FreeBlockList` locates
blocks by bisection and coalesces locally; the retained
:class:`~repro.alloc.reference.ReferenceFreeBlockList` is the original
linear implementation, kept verbatim as the oracle.  These tests drive
both with identical randomized operation sequences — every allocation
flavour, frees, and deliberate double frees — and assert the observable
behaviour is byte-identical at every step: returned extents, raised
exception types, the block snapshot, and the free-word total.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.free_list import FreeBlockList
from repro.alloc.reference import ReferenceFreeBlockList
from repro.errors import AllocationError, FragmentationError

CAPACITIES = (64, 256, 1024)


def _apply(free_list, op, arguments):
    """Run one operation, reducing it to a comparable outcome tuple."""
    try:
        result = getattr(free_list, op)(*arguments[:-1], **arguments[-1])
    except (AllocationError, FragmentationError) as exc:
        return ("raise", type(exc).__name__)
    return ("ok", result)


def _random_op(rng, capacity, allocated):
    """One randomized operation as ``(name, args, kwargs)``.

    Frees draw from the live allocation set (with the extent removed by
    the caller on success); a slice of frees is deliberately re-issued
    or synthesized to exercise the double-free checks.
    """
    roll = rng.random()
    size = rng.randint(1, max(1, capacity // 4))
    if roll < 0.22:
        return ("allocate_high", (size,), {"best_fit": rng.random() < 0.3})
    if roll < 0.44:
        return ("allocate_low", (size,), {"best_fit": rng.random() < 0.3})
    if roll < 0.56:
        start = rng.randint(0, capacity - 1)
        return ("allocate_at", (start, min(size, capacity - start)), {})
    if roll < 0.68:
        return ("allocate_split", (size,), {"from_high": rng.random() < 0.5})
    if allocated and roll < 0.94:
        extents = rng.choice(allocated)
        return ("free_extents", (extents,), {})
    # Deliberate bad free: arbitrary range, frequently overlapping
    # something already free.
    start = rng.randint(0, capacity - 1)
    return ("free", (start, min(size, capacity - start)), {})


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(CAPACITIES),
)
def test_random_operation_sequences_match_reference(seed, capacity):
    rng = random.Random(seed)
    fast = FreeBlockList(capacity)
    oracle = ReferenceFreeBlockList(capacity)
    allocated = []
    for _ in range(120):
        op, args, kwargs = _random_op(rng, capacity, allocated)
        fast_outcome = _apply(fast, op, (*args, kwargs))
        oracle_outcome = _apply(oracle, op, (*args, kwargs))
        assert fast_outcome == oracle_outcome, (seed, op, args, kwargs)
        fast.check_invariants()
        assert fast.blocks() == oracle.blocks(), (seed, op, args, kwargs)
        assert fast.free_words == oracle.free_words
        assert fast.largest_block == oracle.largest_block
        status, result = fast_outcome
        if status != "ok":
            continue
        if op in ("allocate_high", "allocate_low", "allocate_at"):
            allocated.append((result,))
        elif op == "allocate_split":
            allocated.append(result)
        elif op == "free_extents":
            allocated.remove(args[0])


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_is_free_matches_reference(seed):
    rng = random.Random(seed)
    capacity = 128
    fast = FreeBlockList(capacity)
    oracle = ReferenceFreeBlockList(capacity)
    for _ in range(20):
        op, args, kwargs = _random_op(rng, capacity, [])
        _apply(fast, op, (*args, kwargs))
        _apply(oracle, op, (*args, kwargs))
    for start in range(-1, capacity + 1):
        for size in (0, 1, 3, 17, capacity):
            assert fast.is_free(start, size) == oracle.is_free(start, size)


def test_double_free_exception_type_matches_reference():
    fast = FreeBlockList(64)
    oracle = ReferenceFreeBlockList(64)
    for free_list in (fast, oracle):
        free_list.allocate_at(10, 20)
        free_list.free(10, 20)
    for free_list in (fast, oracle):
        with pytest.raises(AllocationError, match="double free"):
            free_list.free(15, 5)
    assert fast.blocks() == oracle.blocks()


def test_coalescing_patterns_match_reference():
    """Merge-below, merge-above, and bridge-both on both lists."""
    fast = FreeBlockList(100)
    oracle = ReferenceFreeBlockList(100)
    for free_list in (fast, oracle):
        free_list.allocate_at(0, 100)
        free_list.free(10, 10)   # isolated
        free_list.free(20, 5)    # merges below -> [10..25)
        free_list.free(30, 10)   # isolated
        free_list.free(25, 5)    # bridges both -> [10..40)
        free_list.free(5, 5)     # merges above -> [5..40)
    assert fast.blocks() == oracle.blocks()
    assert len(fast.blocks()) == 1
    fast.check_invariants()
