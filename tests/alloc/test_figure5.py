"""Reproduction of the paper's Figure 5 allocation example.

Figure 5 shows one frame-buffer set while the three kernels of cluster 3
execute twice (RF = 2):

* ``D13`` — data shared among clusters 1..3, resident until cluster 3
  finishes;
* ``D37`` — data shared among clusters 3..7, resident beyond cluster 3
  (still present "before cluster 5 execution");
* ``d1``, ``d2`` — per-kernel input data, two instances each;
* ``r13``, ``r23`` — intermediate results for kernel 3, placed at lower
  addresses, released once kernel 3 consumed them;
* ``R3,5`` — cluster 3's result kept for cluster 5, placed at upper
  addresses;
* ``Rout`` — a final result, stored externally after the cluster.

We build a seven-cluster application with that structure and assert the
placement/lifetime properties the figure depicts.
"""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler


@pytest.fixture(scope="module")
def figure5_schedule():
    builder = Application.build("figure5", total_iterations=8)
    builder.data("D13", 96, invariant=True)   # shared clusters 1 and 3
    builder.data("D37", 128, invariant=True)  # shared clusters 3, 5, 7
    builder.data("d1", 64)
    builder.data("d2", 64)
    # Clusters 1 and 2: simple pass-throughs (cluster 1 uses D13).
    builder.data("in1", 48).data("in2", 48)
    builder.kernel("pre1", context_words=16, cycles=60,
                   inputs=["in1", "D13"], outputs=["p1"],
                   result_sizes={"p1": 32})
    builder.kernel("pre2", context_words=16, cycles=60,
                   inputs=["in2", "p1"], outputs=["p2"],
                   result_sizes={"p2": 32})
    builder.final("p2")
    # Cluster 2: unrelated work on the other set.
    builder.data("in4", 48)
    builder.kernel("mid4", context_words=16, cycles=60,
                   inputs=["in4"], outputs=["m4"], result_sizes={"m4": 32})
    # Cluster 3: the figure's three kernels, RF=2.
    builder.kernel("k1", context_words=16, cycles=80,
                   inputs=["d1", "D13", "D37"],
                   outputs=["r13"], result_sizes={"r13": 48})
    builder.kernel("k2", context_words=16, cycles=80,
                   inputs=["d2"],
                   outputs=["r23", "Rout"],
                   result_sizes={"r23": 48, "Rout": 40})
    builder.kernel("k3", context_words=16, cycles=80,
                   inputs=["r13", "r23"],
                   outputs=["R35"], result_sizes={"R35": 56})
    builder.final("Rout")
    # Cluster 4: other set again.
    builder.data("in6", 48)
    builder.kernel("mid6", context_words=16, cycles=60,
                   inputs=["in6"], outputs=["m6"], result_sizes={"m6": 32})
    # Cluster 5: consumes R35 and D37 (twice).
    builder.kernel("k5", context_words=16, cycles=60,
                   inputs=["R35", "D37", "m4"],
                   outputs=["f5"], result_sizes={"f5": 32})
    builder.final("f5")
    builder.kernel("k7", context_words=16, cycles=60,
                   inputs=["D37", "m6", "f5"],
                   outputs=["f7"], result_sizes={"f7": 32})
    builder.final("f7")
    application = builder.finish()
    clustering = Clustering(
        application,
        [
            ["pre1", "pre2"],        # Cl1 (set 0)
            ["mid4"],                # Cl2 (set 1)
            ["k1", "k2", "k3"],      # Cl3 (set 0) — the figure's cluster
            ["mid6"],                # Cl4 (set 1)
            ["k5", "k7"],            # Cl5 (set 0) — consumes R35 and D37
        ],
    )
    architecture = Architecture.m1("1K")
    return CompleteDataScheduler(architecture, ScheduleOptions(rf_cap=2)) \
        .schedule(application, clustering)


@pytest.fixture(scope="module")
def figure5_allocation(figure5_schedule):
    return FrameBufferAllocator(figure5_schedule).allocate_set(0)


class TestFigure5:
    def test_rf_is_two(self, figure5_schedule):
        assert figure5_schedule.rf == 2

    def test_shared_data_kept(self, figure5_schedule):
        kept = set(figure5_schedule.keep_names())
        assert "D13" in kept
        assert "D37" in kept
        assert "R35" in kept

    def test_no_overlaps(self, figure5_allocation):
        figure5_allocation.verify()

    def test_no_splits(self, figure5_allocation):
        assert figure5_allocation.splits == 0

    def test_shared_data_at_upper_addresses(self, figure5_allocation):
        """D13/D37 occupy the top of the set (Figure 5 rows 1-2)."""
        d37 = figure5_allocation.record_for("D37", 0)
        assert d37.direction == "high"
        top = figure5_allocation.capacity_words
        assert d37.extents[0].end == top or \
            figure5_allocation.record_for("D13", 0).extents[0].end == top

    def test_intermediates_at_lower_addresses(self, figure5_allocation):
        for name in ("r13", "r23"):
            for instance in (0, 1):
                record = figure5_allocation.record_for(name, instance)
                assert record.direction == "low"

    def test_kept_result_at_upper_addresses(self, figure5_allocation):
        assert figure5_allocation.record_for("R35", 0).direction == "high"

    def test_d37_outlives_cluster3(self, figure5_allocation):
        """D37 is still resident when cluster 5 starts (snapshot g)."""
        d37 = figure5_allocation.record_for("D37", 0)
        cluster5_snapshots = [
            snapshot for snapshot in figure5_allocation.snapshots
            if "Cl5" in snapshot.label and "input" in snapshot.label
        ]
        assert cluster5_snapshots
        snapshot = cluster5_snapshots[0]
        names = {name for name, _, _ in snapshot.regions}
        assert "D37" in names
        assert "R35" in names
        assert "D13" not in names  # released with cluster 3

    def test_intermediate_released_after_consumer(self, figure5_allocation):
        """r13 instances die when k3 executes the matching iteration."""
        first = figure5_allocation.record_for("r13", 0)
        second = figure5_allocation.record_for("r13", 1)
        assert first.free_step <= second.free_step

    def test_iteration_instances_adjacent(self, figure5_allocation):
        """Instance 1 of an input sits adjacent to instance 0
        (the figure's regularity property)."""
        first = figure5_allocation.record_for("d2", 0)
        second = figure5_allocation.record_for("d2", 1)
        assert abs(second.extents[0].start - first.extents[0].start) == \
            first.size

    def test_snapshot_sequence_matches_figure(self, figure5_allocation):
        """The snapshot labels include the figure's a)..f) sequence for
        cluster 3: load, k1 x2, k2 x2, k3 x2, stores."""
        labels = [s.label for s in figure5_allocation.snapshots]
        cl3_start = labels.index("after load Cl3 input data")
        expected = [
            "after load Cl3 input data",
            "after execution 1 of k1",
            "after execution 2 of k1",
            "after execution 1 of k2",
            "after execution 2 of k2",
            "after execution 1 of k3",
            "after execution 2 of k3",
            "after Cl3 stores complete",
        ]
        assert labels[cl3_start:cl3_start + len(expected)] == expected
