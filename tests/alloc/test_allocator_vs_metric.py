"""Cross-layer property: the allocator never exceeds the occupancy the
scheduler budgeted.

The scheduler admits (RF, keeps) because ``DS(C_c, RF, keeps) <= FBS``
for every cluster; the allocator then has to realise that layout.  The
link between the two layers is the invariant tested here: the
allocator's measured peak occupancy on a set never exceeds the maximum
budgeted ``DS(C_c)`` over that set's clusters (the metric is
deliberately conservative — e.g. kept shared results are charged for
the whole round — so the allocator has at least as much room as the
scheduler assumed)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.params import Architecture
from repro.core.metrics import cluster_data_size
from repro.errors import InfeasibleScheduleError
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments


def _check(schedule):
    dataflow = schedule.dataflow
    for fb_set in (0, 1):
        clusters = schedule.clustering.on_set(fb_set)
        if not clusters:
            continue
        budget = max(
            cluster_data_size(
                dataflow, cluster.index, schedule.rf, schedule.keeps
            )
            for cluster in clusters
        )
        allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
        assert allocation.peak_words <= budget, (
            f"set {fb_set}: allocator peak {allocation.peak_words} exceeds "
            f"budget {budget}"
        )


class TestAllocatorWithinBudget:
    @pytest.mark.parametrize(
        "experiment_id", [spec.id for spec in paper_experiments()]
    )
    def test_paper_workloads(self, experiment_id):
        spec = next(
            s for s in paper_experiments() if s.id == experiment_id
        )
        application, clustering = spec.build()
        schedule = CompleteDataScheduler(
            Architecture.m1(spec.fb)
        ).schedule(application, clustering)
        _check(schedule)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=8000),
           st.sampled_from(["2K", "8K"]))
    def test_random_workloads(self, seed, fb):
        application, clustering = random_application(seed, iterations=4)
        architecture = Architecture.m1(fb)
        for scheduler_cls in (DataScheduler, CompleteDataScheduler):
            try:
                schedule = scheduler_cls(architecture).schedule(
                    application, clustering
                )
            except InfeasibleScheduleError:
                continue
            _check(schedule)
