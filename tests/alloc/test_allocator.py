"""Tests for the Figure-4 allocation algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.allocator import FrameBufferAllocator
from repro.alloc.stats import compute_stats
from repro.arch.params import Architecture
from repro.core.cluster import Clustering
from repro.errors import FragmentationError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.random_gen import random_application


def _cds_schedule(app, clustering, fb="2K"):
    return CompleteDataScheduler(Architecture.m1(fb)).schedule(app, clustering)


class TestBasicProperties:
    def test_no_overlap_sharing_app(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            allocation.verify()

    def test_capacity_respected(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            assert allocation.peak_words <= allocation.capacity_words
            assert allocation.highest_address_used <= allocation.capacity_words

    def test_all_regions_released(self, sharing_app, sharing_clustering):
        """execute() raises if anything survives the round; reaching a
        map at all proves clean teardown."""
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        assert allocation.records  # something was placed and released

    def test_deterministic(self, sharing_app, sharing_clustering):
        """Identical layout across runs = periodic across rounds."""
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        first = FrameBufferAllocator(schedule).allocate_set(0)
        second = FrameBufferAllocator(schedule).allocate_set(0)
        assert [
            (r.name, r.instance, r.extents) for r in first.records
        ] == [
            (r.name, r.instance, r.extents) for r in second.records
        ]

    def test_directions(self, sharing_app, sharing_clustering):
        """Inputs sit in upper addresses, results in lower ones."""
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        directions = {r.name: r.direction for r in allocation.records}
        assert directions["d"] == "high"
        assert directions["out"] == "low"

    def test_kept_shared_result_goes_high(self, sharing_app,
                                          sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        if "r1" in schedule.keep_names():
            allocation = FrameBufferAllocator(schedule).allocate_set(0)
            assert allocation.record_for("r1", 0).direction == "high"

    def test_rf_instances_allocated(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "2K")
        assert schedule.rf >= 2
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        instances = {
            r.instance for r in allocation.records if r.name == "d"
        }
        assert instances == set(range(schedule.rf))

    def test_invariant_single_instance(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        schedule = _cds_schedule(invariant_app, clustering, "2K")
        assert schedule.rf >= 2
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        instances = {
            r.instance for r in allocation.records if r.name == "table"
        }
        assert instances == {0}

    def test_snapshots_have_labels(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        labels = [s.label for s in allocation.snapshots]
        assert any("input data" in label for label in labels)
        assert any("execution" in label for label in labels)
        assert any("stores complete" in label for label in labels)

    def test_record_for_missing(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        with pytest.raises(KeyError):
            allocation.record_for("ghost", 0)

    def test_allocate_both_sets(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        set0, set1 = FrameBufferAllocator(schedule).allocate()
        assert set0.fb_set == 0 and set1.fb_set == 1


class TestSchedulers:
    def test_works_for_all_schedulers(self, sharing_app, sharing_clustering):
        arch = Architecture.m1("2K")
        for scheduler_cls in (BasicScheduler, DataScheduler,
                              CompleteDataScheduler):
            schedule = scheduler_cls(arch).schedule(
                sharing_app, sharing_clustering
            )
            for fb_set in (0, 1):
                allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
                allocation.verify()
                assert allocation.peak_words <= arch.fb_set_words


class TestStats:
    def test_stats_fields(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        allocation = FrameBufferAllocator(schedule).allocate_set(0)
        stats = compute_stats(allocation)
        assert stats.placements == len(allocation.records)
        assert 0 < stats.utilisation <= 1
        assert stats.peak_words == allocation.peak_words
        assert stats.mean_live_words <= stats.peak_words

    def test_paper_claim_no_splits(self, sharing_app, sharing_clustering):
        schedule = _cds_schedule(sharing_app, sharing_clustering, "1K")
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            assert compute_stats(allocation).split_free


class TestRandomised:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=3000))
    def test_random_apps_allocate_cleanly(self, seed):
        """Any schedulable random app yields overlap-free, in-capacity
        allocations on both sets (splitting allowed)."""
        application, clustering = random_application(seed)
        arch = Architecture.m1("4K")
        try:
            schedule = CompleteDataScheduler(arch).schedule(
                application, clustering
            )
        except Exception:
            return  # infeasible random instance: not this test's topic
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            allocation.verify()
            assert allocation.peak_words <= arch.fb_set_words
