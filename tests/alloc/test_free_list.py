"""Tests for the FB_list free-block list, including property-based ones."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.free_list import FreeBlockList
from repro.errors import AllocationError, FragmentationError


class TestFirstFit:
    def test_high_allocates_from_top(self):
        fbl = FreeBlockList(1024)
        extent = fbl.allocate_high(100)
        assert extent.start == 924
        assert extent.end == 1024

    def test_low_allocates_from_bottom(self):
        fbl = FreeBlockList(1024)
        extent = fbl.allocate_low(100)
        assert extent.start == 0

    def test_high_and_low_grow_towards_each_other(self):
        fbl = FreeBlockList(1024)
        top = fbl.allocate_high(100)
        bottom = fbl.allocate_low(100)
        assert bottom.end <= top.start
        assert fbl.free_words == 824

    def test_high_scans_blocks_downwards(self):
        fbl = FreeBlockList(1024)
        fbl.allocate_at(900, 100)        # hole near the top
        extent = fbl.allocate_high(200)  # doesn't fit above -> below
        assert extent.end <= 900

    def test_low_scans_blocks_upwards(self):
        fbl = FreeBlockList(1024)
        fbl.allocate_at(0, 100)
        extent = fbl.allocate_low(50)
        assert extent.start == 100

    def test_exhaustion_raises(self):
        fbl = FreeBlockList(64)
        fbl.allocate_high(64)
        with pytest.raises(FragmentationError):
            fbl.allocate_high(1)

    def test_fragmented_raises_even_with_enough_total(self):
        fbl = FreeBlockList(100)
        fbl.allocate_at(40, 20)  # splits free space into 40 + 40
        assert fbl.free_words == 80
        with pytest.raises(FragmentationError):
            fbl.allocate_high(60)

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            FreeBlockList(100).allocate_high(0)


class TestAllocateAt:
    def test_exact_placement(self):
        fbl = FreeBlockList(1024)
        extent = fbl.allocate_at(500, 24)
        assert extent.start == 500
        assert not fbl.is_free(500, 1)

    def test_occupied_range_rejected(self):
        fbl = FreeBlockList(1024)
        fbl.allocate_at(500, 24)
        with pytest.raises(FragmentationError):
            fbl.allocate_at(510, 24)

    def test_out_of_range_rejected(self):
        with pytest.raises(FragmentationError):
            FreeBlockList(100).allocate_at(90, 20)


class TestSplit:
    def test_split_across_blocks(self):
        fbl = FreeBlockList(100)
        fbl.allocate_at(40, 20)  # free: [0,40) and [60,100)
        extents = fbl.allocate_split(60, from_high=True)
        assert sum(e.size for e in extents) == 60
        assert len(extents) == 2
        assert fbl.free_words == 20

    def test_split_single_block_gives_one_extent(self):
        fbl = FreeBlockList(100)
        extents = fbl.allocate_split(30, from_high=False)
        assert len(extents) == 1

    def test_split_insufficient_raises(self):
        fbl = FreeBlockList(100)
        fbl.allocate_low(80)
        with pytest.raises(FragmentationError):
            fbl.allocate_split(30, from_high=True)


class TestFree:
    def test_free_and_coalesce(self):
        fbl = FreeBlockList(100)
        a = fbl.allocate_low(30)
        b = fbl.allocate_low(30)
        fbl.free(a.start, a.size)
        fbl.free(b.start, b.size)
        assert fbl.largest_block == 100
        assert len(fbl.blocks()) == 1

    def test_double_free_rejected(self):
        fbl = FreeBlockList(100)
        a = fbl.allocate_low(30)
        fbl.free(a.start, a.size)
        with pytest.raises(AllocationError, match="double free"):
            fbl.free(a.start, a.size)

    def test_free_outside_capacity_rejected(self):
        with pytest.raises(AllocationError):
            FreeBlockList(100).free(90, 20)

    def test_free_extents(self):
        fbl = FreeBlockList(100)
        extents = fbl.allocate_split(100, from_high=True)
        fbl.free_extents(extents)
        assert fbl.free_words == 100


@st.composite
def _operations(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["high", "low", "free"]),
            st.integers(min_value=1, max_value=64),
        ),
        min_size=1, max_size=60,
    ))


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(_operations())
    def test_invariants_under_random_workload(self, operations):
        """Free words stay consistent; blocks stay sorted/coalesced; no
        allocation overlaps another live allocation."""
        fbl = FreeBlockList(512)
        live = []
        for action, size in operations:
            if action == "free" and live:
                extent = live.pop(0)
                fbl.free(extent.start, extent.size)
            elif action in ("high", "low"):
                try:
                    extent = (fbl.allocate_high(size) if action == "high"
                              else fbl.allocate_low(size))
                except FragmentationError:
                    continue
                for other in live:
                    assert not extent.overlaps(other), (extent, other)
                live.append(extent)
            fbl.check_invariants()
            assert fbl.free_words == 512 - sum(e.size for e in live)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100),
                    min_size=1, max_size=20))
    def test_alloc_free_all_restores_capacity(self, sizes):
        fbl = FreeBlockList(2048)
        extents = []
        for size in sizes:
            try:
                extents.append(fbl.allocate_high(size))
            except FragmentationError:
                break
        for extent in extents:
            fbl.free(extent.start, extent.size)
        assert fbl.free_words == 2048
        assert fbl.largest_block == 2048
