"""Infeasibility diagnostics must show need strictly above capacity.

Regression for the rounding-collision bug: ``format_size`` renders to
two decimals of a K, so 1029 and 1024 both became ``1K`` and seed 13
at a 1K set produced "cluster Cl4 needs 1K (RF=1) but one frame-buffer
set holds 1K".  Messages now fall back to exact word counts whenever
the two numbers would collide, and every
:class:`~repro.errors.InfeasibleScheduleError` carries machine-readable
``required``/``available`` with ``required > available``.
"""

import re

import pytest

from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.units import format_words_pair
from repro.workloads.random_gen import random_application

_SCHEDULERS = (BasicScheduler, DataScheduler, CompleteDataScheduler)


def test_seed13_at_1k_reports_exact_words():
    """The exact reproducer: 1029 vs 1024 previously both rendered 1K."""
    application, clustering = random_application(13)
    with pytest.raises(InfeasibleScheduleError) as excinfo:
        BasicScheduler(Architecture.m1(1024)).schedule(
            application, clustering
        )
    exc = excinfo.value
    assert exc.required == 1029
    assert exc.available == 1024
    assert "1029 words" in str(exc)
    assert "1024 words" in str(exc)
    assert "1K" not in str(exc)


def test_ds_rf1_diagnostic_names_worst_cluster():
    application, clustering = random_application(13)
    with pytest.raises(InfeasibleScheduleError) as excinfo:
        DataScheduler(Architecture.m1(300)).schedule(
            application, clustering
        )
    exc = excinfo.value
    assert exc.cluster
    assert exc.required is not None and exc.available == 300
    assert exc.required > exc.available
    assert "RF=1" in str(exc)


@pytest.mark.parametrize("scheduler_cls", _SCHEDULERS)
def test_infeasibility_always_displays_need_above_capacity(scheduler_cls):
    """Property: every infeasibility message shows need > capacity.

    Sweeps random workloads across frame-buffer sizes chosen to make
    many of them infeasible, including sizes straddling the 1K/2K
    rounding boundaries where the old message collided.
    """
    checked = 0
    for seed in range(25):
        application, clustering = random_application(seed)
        for fb_words in (260, 1021, 1024, 1027, 2048):
            scheduler = scheduler_cls(Architecture.m1(fb_words))
            try:
                scheduler.schedule(application, clustering)
                continue
            except InfeasibleScheduleError as exc:
                checked += 1
                message = str(exc)
                assert exc.required is not None, message
                assert exc.available is not None, message
                assert exc.required > exc.available, message
                need, capacity = format_words_pair(
                    exc.required, exc.available
                )
                assert need != capacity, message
                assert need in message and capacity in message, message
                # The two rendered quantities must also compare in the
                # stated direction when both are plain word counts.
                numbers = [
                    int(value)
                    for value in re.findall(r"(\d+) words", message)
                ]
                if len(numbers) >= 2:
                    assert numbers[0] > numbers[1], message
    assert checked >= 25  # the sweep really exercised infeasible cases
