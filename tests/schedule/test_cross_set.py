"""Tests for the cross-set retention extension (the paper's future work:
"data and results reuse among clusters assigned to different sets of
the FB when the architecture allows it")."""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.reuse import find_shared_data, find_shared_results
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator


@pytest.fixture
def cross_app():
    """Two clusters on different sets sharing a datum and a result —
    nothing retainable on M1, everything retainable cross-set."""
    return (
        Application.build("cross", total_iterations=8)
        .data("d1", 128).data("d2", 128)
        .data("both", 96)
        .kernel("k1", context_words=16, cycles=200,
                inputs=["d1", "both"],
                outputs=["r1"], result_sizes={"r1": 64})
        .kernel("k2", context_words=16, cycles=200,
                inputs=["d2", "both", "r1"],
                outputs=["out"], result_sizes={"out": 64})
        .final("out")
        .finish()
    )


@pytest.fixture
def cross_arch():
    return Architecture.m1("1K", fb_cross_set_access=True)


class TestCandidates:
    def test_m1_finds_nothing(self, cross_app):
        clustering = Clustering.per_kernel(cross_app)
        dataflow = analyze_dataflow(cross_app, clustering)
        assert find_shared_data(dataflow) == []
        assert find_shared_results(dataflow) == []

    def test_cross_set_finds_both(self, cross_app):
        clustering = Clustering.per_kernel(cross_app)
        dataflow = analyze_dataflow(cross_app, clustering)
        data = find_shared_data(dataflow, include_cross_set=True)
        results = find_shared_results(dataflow, include_cross_set=True)
        assert [item.name for item in data] == ["both"]
        assert [item.name for item in results] == ["r1"]
        # Homed in the first consumer's / producer's set.
        assert data[0].fb_set == 0
        assert results[0].fb_set == 0
        # No cross-set consumer forces a store any more.
        assert not results[0].store_required

    def test_mixed_consumers_single_candidate(self, sharing_app,
                                              sharing_clustering):
        """With cross-set enabled, r1's candidate covers BOTH later
        consumers (cluster 1 on set 1 and cluster 2 on set 0)."""
        dataflow = analyze_dataflow(sharing_app, sharing_clustering)
        results = find_shared_results(dataflow, include_cross_set=True)
        r1 = next(item for item in results if item.name == "r1")
        assert r1.consumer_clusters == (1, 2)
        assert not r1.store_required


class TestScheduling:
    def test_requires_architecture_support(self, cross_app):
        clustering = Clustering.per_kernel(cross_app)
        scheduler = CompleteDataScheduler(
            Architecture.m1("1K"),
            ScheduleOptions(cross_set_retention=True),
        )
        with pytest.raises(InfeasibleScheduleError, match="cross_set"):
            scheduler.schedule(cross_app, clustering)

    def test_keeps_cross_set_items(self, cross_app, cross_arch):
        clustering = Clustering.per_kernel(cross_app)
        schedule = CompleteDataScheduler(
            cross_arch, ScheduleOptions(cross_set_retention=True)
        ).schedule(cross_app, clustering)
        assert set(schedule.keep_names()) == {"both", "r1"}
        # Consumers read in place: cluster 1 loads only its own input.
        plan1 = schedule.plan_for(1)
        assert plan1.loads == ("d2",)
        assert set(plan1.kept_inputs) == {"both", "r1"}
        # r1 is not stored at all (no unserved consumer, not final).
        assert "r1" not in schedule.plan_for(0).stores

    def test_traffic_reduced_vs_m1(self, cross_app, cross_arch):
        clustering = Clustering.per_kernel(cross_app)
        m1_schedule = CompleteDataScheduler(
            Architecture.m1("1K")
        ).schedule(cross_app, clustering)
        cross_schedule = CompleteDataScheduler(
            cross_arch, ScheduleOptions(cross_set_retention=True)
        ).schedule(cross_app, clustering)
        assert cross_schedule.summary().total_data_words < \
            m1_schedule.summary().total_data_words

    def test_off_by_default(self, cross_app, cross_arch):
        """A cross-capable architecture still schedules M1-style unless
        the option is set."""
        clustering = Clustering.per_kernel(cross_app)
        schedule = CompleteDataScheduler(cross_arch).schedule(
            cross_app, clustering
        )
        assert schedule.keeps == ()


class TestExecution:
    def _schedule(self, cross_app, cross_arch):
        clustering = Clustering.per_kernel(cross_app)
        return CompleteDataScheduler(
            cross_arch, ScheduleOptions(cross_set_retention=True)
        ).schedule(cross_app, clustering)

    def test_program_verifies(self, cross_app, cross_arch):
        schedule = self._schedule(cross_app, cross_arch)
        verify_program(generate_program(schedule))

    def test_functional_semantics_preserved(self, cross_app, cross_arch):
        schedule = self._schedule(cross_app, cross_arch)
        machine = MorphoSysM1(cross_arch, functional=True)
        report = Simulator(machine).run(
            generate_program(schedule), functional=True
        )
        assert report.functional_verified is True

    def test_allocation_clean_on_both_sets(self, cross_app, cross_arch):
        schedule = self._schedule(cross_app, cross_arch)
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            allocation.verify()
            assert allocation.splits == 0

    def test_sharing_app_cross_set(self, sharing_app, sharing_clustering):
        """The three-cluster fixture with mixed-set consumers runs the
        cross-set path end to end."""
        arch = Architecture.m1("2K", fb_cross_set_access=True)
        schedule = CompleteDataScheduler(
            arch, ScheduleOptions(cross_set_retention=True)
        ).schedule(sharing_app, sharing_clustering)
        assert "r1" in schedule.keep_names()
        verify_program(generate_program(schedule))
        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(
            generate_program(schedule), functional=True
        )
        assert report.functional_verified is True
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            allocation.verify()
