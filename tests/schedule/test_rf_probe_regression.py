"""The RF search must never probe the same reuse factor twice.

Regression for the gallop hand-off bug: after the gallop loop exited on
a failed ``check(min(high * 2, cap))``, the binary-search seeding
re-probed that same value — a wasted occupancy sweep and a duplicate
``rf.probe`` decision-trace event (seed 7 at 2K emitted ``(4, False)``
twice).  Both the naive search (:func:`repro.schedule.rf.max_common_rf`)
and the incremental engine
(:meth:`repro.schedule.occupancy.OccupancyEngine.max_common_rf`) had
the bug.
"""

import pytest

from repro.arch.params import Architecture
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.random_gen import random_application


def _probe_sequence(seed, fb_words, *, engine, scheduler_cls=DataScheduler):
    application, clustering = random_application(seed)
    architecture = Architecture.m1(fb_words)
    options = ScheduleOptions(decision_trace=True, occupancy_engine=engine)
    schedule = scheduler_cls(architecture, options).schedule(
        application, clustering
    )
    return [
        (event.detail["rf"], event.detail["fits"])
        for event in schedule.decisions.of_kind("rf.probe")
    ], schedule


def test_seed7_at_2k_probes_each_rf_once():
    """The exact reproducer: the old code probed (4, False) twice."""
    probes, schedule = _probe_sequence(7, 2048, engine="incremental")
    assert probes == [(1, True), (2, True), (4, False), (3, False)]
    assert schedule.rf == 2


@pytest.mark.parametrize("engine", ["incremental", "naive"])
@pytest.mark.parametrize("scheduler_cls", [DataScheduler,
                                           CompleteDataScheduler])
def test_rf_search_never_probes_twice(engine, scheduler_cls):
    for seed in range(20):
        for fb_words in (1024, 2048, 4096):
            try:
                probes, _ = _probe_sequence(
                    seed, fb_words, engine=engine,
                    scheduler_cls=scheduler_cls,
                )
            except Exception:
                continue  # infeasible at this size: no trace to check
            rf_values = [rf for rf, _ in probes]
            assert len(rf_values) == len(set(rf_values)), (
                f"seed {seed} at {fb_words}: duplicate probe in {probes}"
            )


@pytest.mark.parametrize("scheduler_cls", [DataScheduler,
                                           CompleteDataScheduler])
def test_both_engines_emit_identical_probe_traces(scheduler_cls):
    for seed in range(12):
        incremental, s1 = _probe_sequence(
            seed, 2048, engine="incremental", scheduler_cls=scheduler_cls
        )
        naive, s2 = _probe_sequence(
            seed, 2048, engine="naive", scheduler_cls=scheduler_cls
        )
        assert incremental == naive
        assert s1.rf == s2.rf
