"""Tests for the serial-vs-pipelined estimator paths."""

import pytest

from repro.arch.params import Architecture
from repro.schedule.basic import BasicScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.estimate import estimate_execution_cycles, visit_windows


class TestSerialEstimate:
    def test_serial_is_sum_of_windows(self, sharing_app,
                                      sharing_clustering, m1_medium):
        schedule = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        windows = visit_windows(schedule, m1_medium)
        expected = sum(c + l + s for c, l, s in windows)
        assert estimate_execution_cycles(schedule, m1_medium) == expected

    def test_pipelined_below_serial(self, sharing_app, sharing_clustering,
                                    m1_medium):
        basic = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        ds = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert estimate_execution_cycles(ds, m1_medium) < \
            estimate_execution_cycles(basic, m1_medium)

    def test_pipelined_at_least_compute_bound(self, sharing_app,
                                              sharing_clustering,
                                              m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        windows = visit_windows(schedule, m1_medium)
        compute_total = sum(c for c, _, _ in windows)
        assert estimate_execution_cycles(schedule, m1_medium) >= \
            compute_total

    def test_window_loads_include_contexts(self, sharing_app,
                                           sharing_clustering, m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        windows = visit_windows(schedule, m1_medium)
        timing = m1_medium.timing
        # Every visit's dma_loads is at least its context transfer cost.
        for (compute, loads, _), plan in zip(
            windows, list(schedule.cluster_plans) * schedule.rounds
        ):
            kernels = schedule.clustering.kernels_of(
                schedule.clustering[plan.cluster_index]
            )
            context_cost = sum(
                timing.context_transfer_cycles(k.context_words)
                for k in kernels
            )
            assert loads >= context_cost
