"""Property-based equivalence: incremental occupancy engine vs. naive.

``ScheduleOptions(occupancy_engine="incremental")`` (the default)
serves RF search, keep acceptance, and capacity validation from the
memoised :class:`~repro.schedule.occupancy.OccupancyEngine`;
``"naive"`` recomputes every ``DS(C_c)`` from scratch.  The perf
overhaul's contract is that the two paths produce **byte-identical**
schedules — same RF, same keeps in the same order, same cluster plans —
agree on infeasibility, and that everything downstream (allocation)
is therefore identical too.  These tests enforce that contract over
random workloads across frame-buffer sizes and scheduler policies.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.params import Architecture
from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import cluster_data_size, cluster_data_size_naive
from repro.errors import InfeasibleScheduleError
from repro.lint.runner import lint_schedule
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments


def _outcome(scheduler_cls, application, clustering, architecture,
             **option_overrides):
    """Schedule once, reduced to a comparable outcome."""
    options = ScheduleOptions(**option_overrides)
    try:
        schedule = scheduler_cls(architecture, options).schedule(
            application, clustering
        )
    except InfeasibleScheduleError:
        return None
    return schedule


def _fingerprint(schedule):
    return (schedule.rf, schedule.keeps, schedule.cluster_plans)


def _assert_engines_agree(scheduler_cls, application, clustering,
                          architecture, **option_overrides):
    incremental = _outcome(
        scheduler_cls, application, clustering, architecture,
        occupancy_engine="incremental", **option_overrides,
    )
    naive = _outcome(
        scheduler_cls, application, clustering, architecture,
        occupancy_engine="naive", **option_overrides,
    )
    assert (incremental is None) == (naive is None)
    if incremental is None:
        return None
    assert _fingerprint(incremental) == _fingerprint(naive)
    return incremental, naive


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["1K", "2K", "4K"]),
    st.sampled_from(["max_then_keep", "joint"]),
    st.sampled_from(["tf", "size", "fifo"]),
)
def test_cds_engines_byte_identical(seed, fb, rf_policy, keep_policy):
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    _assert_engines_agree(
        CompleteDataScheduler, application, clustering, architecture,
        rf_policy=rf_policy, keep_policy=keep_policy,
    )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["1K", "2K", "4K"]),
)
def test_data_scheduler_engines_byte_identical(seed, fb):
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    _assert_engines_agree(
        DataScheduler, application, clustering, architecture
    )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["2K", "4K"]),
)
def test_allocations_identical_across_engines(seed, fb):
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    schedules = _assert_engines_agree(
        CompleteDataScheduler, application, clustering, architecture
    )
    if schedules is None:
        return
    incremental, naive = schedules
    maps_incremental = FrameBufferAllocator(incremental).allocate()
    maps_naive = FrameBufferAllocator(naive).allocate()
    for map_a, map_b in zip(maps_incremental, maps_naive):
        assert map_a.records == map_b.records


def test_paper_experiments_engines_byte_identical():
    """The bundled experiments, including the rf_cap variants."""
    for spec in paper_experiments():
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        _assert_engines_agree(
            CompleteDataScheduler, application, clustering, architecture
        )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=12),
)
def test_closed_form_occupancy_matches_naive_sweep(seed, rf):
    """``cluster_data_size`` closed form vs. the original event sweep,
    with and without the CDS's own keep decisions in effect."""
    application, clustering = random_application(seed, iterations=4)
    dataflow = analyze_dataflow(application, clustering)
    schedule = _outcome(
        CompleteDataScheduler, application, clustering,
        Architecture.m1("4K"),
    )
    keep_sets = [()]
    if schedule is not None:
        keep_sets.append(schedule.keeps)
    for keeps in keep_sets:
        for cluster in clustering:
            assert cluster_data_size(
                dataflow, cluster.index, rf, keeps
            ) == cluster_data_size_naive(dataflow, cluster.index, rf, keeps)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["2K", "4K"]),
)
def test_cds_schedules_are_lint_clean(seed, fb):
    """Acceptance criterion: every schedule the CDS hands out passes
    the application- and schedule-layer lint with no errors."""
    schedule = _outcome(
        CompleteDataScheduler, *random_application(seed, iterations=4),
        Architecture.m1(fb),
    )
    if schedule is None:
        return
    collector = lint_schedule(schedule)
    assert not collector.has_errors, [str(d) for d in collector.errors]


def test_naive_engine_rejected_values():
    with pytest.raises(ValueError, match="occupancy_engine"):
        ScheduleOptions(occupancy_engine="bogus")
    # dataclasses.replace re-validates via __post_init__.
    with pytest.raises(ValueError):
        dataclasses.replace(ScheduleOptions(), occupancy_engine="fast")
