"""Tests for the Basic, Data and Complete Data Schedulers."""

import pytest

from repro.arch.params import Architecture
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.plan import TransferSummary


class TestBasicScheduler:
    def test_rf_is_one(self, sharing_app, sharing_clustering, m1_medium):
        schedule = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert schedule.rf == 1
        assert schedule.contexts_per_iteration
        assert not schedule.overlap_transfers
        assert schedule.keeps == ()

    def test_loads_everything(self, sharing_app, sharing_clustering,
                              m1_medium):
        schedule = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        plan2 = schedule.plan_for(2)
        assert set(plan2.loads) == {"r2", "shared", "r1"}
        assert plan2.kept_inputs == ()

    def test_stores_shared_results(self, sharing_app, sharing_clustering,
                                   m1_medium):
        schedule = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert "r1" in schedule.plan_for(0).stores

    def test_footprint_feasibility(self, sharing_app, sharing_clustering):
        # Largest cluster footprint (Cl3) = 192+128+192+128 = 640 words.
        BasicScheduler(Architecture.m1(640)).schedule(
            sharing_app, sharing_clustering
        )
        with pytest.raises(InfeasibleScheduleError):
            BasicScheduler(Architecture.m1(639)).schedule(
                sharing_app, sharing_clustering
            )

    def test_oversized_object_reported(self, sharing_app,
                                       sharing_clustering):
        with pytest.raises(InfeasibleScheduleError, match="exceeds"):
            BasicScheduler(Architecture.m1(200)).schedule(
                sharing_app, sharing_clustering
            )

    def test_context_block_overflow_reported(self, sharing_app):
        clustering = Clustering.single(sharing_app)
        arch = Architecture.m1("8K", context_block_words=64)
        with pytest.raises(InfeasibleScheduleError, match="context"):
            BasicScheduler(arch).schedule(sharing_app, clustering)


class TestDataScheduler:
    def test_maximises_rf(self, sharing_app, sharing_clustering, m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert schedule.rf > 1
        assert not schedule.contexts_per_iteration
        assert schedule.overlap_transfers

    def test_no_keeps(self, sharing_app, sharing_clustering, m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert schedule.keeps == ()

    def test_feasible_where_basic_is_not(self, multi_kernel_app,
                                         multi_clustering):
        """Replacement shrinks the peak below the Basic footprint."""
        arch = Architecture.m1(600)
        with pytest.raises(InfeasibleScheduleError):
            BasicScheduler(arch).schedule(multi_kernel_app, multi_clustering)
        schedule = DataScheduler(arch).schedule(
            multi_kernel_app, multi_clustering
        )
        assert schedule.rf >= 1

    def test_infeasible_raises(self, sharing_app, sharing_clustering):
        with pytest.raises(InfeasibleScheduleError):
            DataScheduler(Architecture.m1(300)).schedule(
                sharing_app, sharing_clustering
            )

    def test_rf_cap_option(self, sharing_app, sharing_clustering):
        arch = Architecture.m1("8K")
        schedule = DataScheduler(arch, ScheduleOptions(rf_cap=2)).schedule(
            sharing_app, sharing_clustering
        )
        assert schedule.rf == 2


class TestCompleteDataScheduler:
    def test_keeps_shared_items(self, sharing_app, sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        assert "shared" in schedule.keep_names()
        assert "r1" in schedule.keep_names()

    def test_kept_input_not_loaded_twice(self, sharing_app,
                                         sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        plan0 = schedule.plan_for(0)
        plan2 = schedule.plan_for(2)
        # First consumer loads the shared datum...
        assert "shared" in plan0.loads
        # ...later consumers read it from the FB.
        assert "shared" in plan2.kept_inputs
        assert "shared" not in plan2.loads

    def test_kept_result_not_stored(self, sharing_app, sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("8K")).schedule(
            sharing_app, sharing_clustering
        )
        if "r1" in schedule.keep_names():
            plan0 = schedule.plan_for(0)
            assert "r1" in plan0.retained_outputs
            # r1 is also consumed cross-set (cluster 1) -> still stored.
            assert "r1" in plan0.stores

    def test_keep_rejected_when_pass_through_cluster_is_full(self):
        """A keep must stay resident while non-consuming same-set
        clusters execute; if one of those clusters has no headroom the
        candidate is rejected (paper: 'If DS(C_c) > FBS for some shared
        data or results, these are not kept')."""
        from repro.core.application import Application

        def build(mid_words):
            app = (
                Application.build("tight", total_iterations=4)
                .data("tbl", 200)
                .data("a", 100).data("mid_in", mid_words).data("e", 100)
                .kernel("k1", context_words=8, cycles=50,
                        inputs=["a", "tbl"], outputs=["r1"],
                        result_sizes={"r1": 50})
                .kernel("k2", context_words=8, cycles=50, inputs=["r1"],
                        outputs=["r2"], result_sizes={"r2": 50})
                .kernel("k3", context_words=8, cycles=50, inputs=["mid_in", "r2"],
                        outputs=["r3"], result_sizes={"r3": 50})
                .kernel("k4", context_words=8, cycles=50, inputs=["r3"],
                        outputs=["r4"], result_sizes={"r4": 50})
                .kernel("k5", context_words=8, cycles=50,
                        inputs=["e", "tbl", "r4"], outputs=["out"],
                        result_sizes={"out": 50})
                .final("out")
                .finish()
            )
            return app, Clustering.per_kernel(app)

        arch = Architecture.m1(640)
        # Small middle cluster: tbl fits through it -> kept.
        app, clustering = build(mid_words=100)
        roomy = CompleteDataScheduler(arch).schedule(app, clustering)
        assert "tbl" in roomy.keep_names()
        # Middle cluster (k3, set 0) nearly full: keeping tbl would
        # overflow it while it executes -> rejected.
        app, clustering = build(mid_words=500)
        tight = CompleteDataScheduler(arch).schedule(app, clustering)
        assert "tbl" not in tight.keep_names()

    def test_same_rf_as_data_scheduler(self, sharing_app,
                                       sharing_clustering, m1_medium):
        ds = DataScheduler(m1_medium).schedule(sharing_app, sharing_clustering)
        cds = CompleteDataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        assert cds.rf == ds.rf

    def test_traffic_never_worse(self, sharing_app, sharing_clustering,
                                 m1_medium):
        ds = TransferSummary.from_schedule(
            DataScheduler(m1_medium).schedule(sharing_app, sharing_clustering)
        )
        cds = TransferSummary.from_schedule(
            CompleteDataScheduler(m1_medium).schedule(
                sharing_app, sharing_clustering
            )
        )
        assert cds.total_data_words <= ds.total_data_words

    def test_default_clustering_is_per_kernel(self, sharing_app, m1_medium):
        schedule = CompleteDataScheduler(m1_medium).schedule(sharing_app)
        assert len(schedule.clustering) == len(sharing_app.kernels)

    def test_keep_policies_all_valid(self, sharing_app, sharing_clustering,
                                     m1_medium):
        for policy in ("tf", "size", "fifo"):
            schedule = CompleteDataScheduler(
                m1_medium, ScheduleOptions(keep_policy=policy)
            ).schedule(sharing_app, sharing_clustering)
            assert schedule.rf >= 1

    def test_joint_policy_never_worse_estimated(self, sharing_app,
                                                sharing_clustering,
                                                m1_medium):
        from repro.schedule.estimate import estimate_execution_cycles
        default = CompleteDataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        joint = CompleteDataScheduler(
            m1_medium, ScheduleOptions(rf_policy="joint")
        ).schedule(sharing_app, sharing_clustering)
        assert estimate_execution_cycles(joint, m1_medium) <= \
            estimate_execution_cycles(default, m1_medium)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            ScheduleOptions(keep_policy="magic")
        with pytest.raises(ValueError):
            ScheduleOptions(rf_policy="magic")
        with pytest.raises(ValueError):
            ScheduleOptions(rf_cap=-1)


class TestScheduleObject:
    def test_rounds_and_partial_last_round(self, sharing_app,
                                           sharing_clustering, m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        total = sum(
            schedule.iterations_in_round(r) for r in range(schedule.rounds)
        )
        assert total == sharing_app.total_iterations
        with pytest.raises(IndexError):
            schedule.iterations_in_round(schedule.rounds)

    def test_describe_mentions_keeps(self, sharing_app, sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        text = schedule.describe()
        assert "keeps:" in text
        assert "RF=" in text

    def test_summary_traffic_positive(self, sharing_app, sharing_clustering,
                                      m1_medium):
        summary = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        ).summary()
        assert summary.total_data_loaded_words > 0
        assert summary.total_data_stored_words > 0
        assert summary.total_context_words > 0
        assert summary.data_words_per_iteration > 0

    def test_basic_context_traffic_scales_with_iterations(
            self, sharing_app, sharing_clustering, m1_medium):
        basic = BasicScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        ).summary()
        ds = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        ).summary()
        assert basic.total_context_words > ds.total_context_words
