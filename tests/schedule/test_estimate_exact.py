"""The analytic estimator against exact-solver schedules.

The estimator's bracket — compute-bound below, serial sum above — must
hold for *any* schedule the pipeline can produce, including the exact
solver's, whose (RF, keeps) choices are not constrained to the greedy
trajectory the estimator was tuned on.  The paper experiments plus the
pinned gap anchors (where exact genuinely diverges from greedy) cover
both regimes.
"""

import pytest

from repro.arch.params import Architecture
from repro.core.dataflow import analyze_dataflow
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.estimate import estimate_execution_cycles, visit_windows
from repro.schedule.exact import ExactDataScheduler
from repro.workloads.spec import paper_experiments


def _exact_workloads():
    for spec in paper_experiments():
        application, clustering = spec.build()
        yield spec.id, application, clustering, Architecture.m1(spec.fb_words)
    from pathlib import Path

    from repro.fuzz.case import FuzzCase

    for path in sorted(Path("tests/corpus").glob("gap-anchor-*.json")):
        case = FuzzCase.load(path)
        application, clustering = case.build()
        yield path.stem, application, clustering, case.architecture()


@pytest.mark.parametrize(
    "label,application,clustering,architecture",
    list(_exact_workloads()),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_estimate_brackets_exact_schedule(label, application, clustering,
                                          architecture):
    schedule = ExactDataScheduler(architecture).schedule(
        application, clustering
    )
    windows = visit_windows(schedule, architecture)
    estimate = estimate_execution_cycles(schedule, architecture)
    compute_bound = sum(compute for compute, _, _ in windows)
    serial_sum = sum(
        compute + loads + stores for compute, loads, stores in windows
    )
    assert compute_bound <= estimate <= serial_sum


@pytest.mark.parametrize(
    "label,application,clustering,architecture",
    list(_exact_workloads()),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_exact_traffic_never_exceeds_greedy(label, application, clustering,
                                            architecture):
    dataflow = analyze_dataflow(application, clustering)
    greedy = CompleteDataScheduler(architecture).schedule(
        application, clustering, dataflow=dataflow
    )
    exact = ExactDataScheduler(architecture).schedule(
        application, clustering, dataflow=dataflow
    )
    greedy_summary = greedy.summary()
    exact_summary = exact.summary()
    assert (exact_summary.total_data_words
            + exact_summary.total_context_words) <= (
        greedy_summary.total_data_words
        + greedy_summary.total_context_words)
    # On the paper experiments greedy is optimal; the estimator must
    # therefore agree between the two schedulers' estimates as well.
    if label.startswith("gap-anchor"):
        assert (exact_summary.total_data_words
                + exact_summary.total_context_words) < (
            greedy_summary.total_data_words
            + greedy_summary.total_context_words)
