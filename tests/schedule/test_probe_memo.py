"""Probe memoisation in :meth:`OccupancyEngine.max_common_rf`.

The RF search memoises ``fits(rf, keeps)`` verdicts per ``(keep-set
fingerprint, rf)``: within one search the gallop/bisection hand-off
never re-probes a proven bound, and a repeated search over the same
keep set (the joint-RF sweep re-enters per candidate level) runs zero
new sweeps.  ``probe_evaluations`` counts actual evaluations, so the
tests assert *counter* equality — not just result equality — which is
what catches a silently re-introduced duplicate sweep.  Extends the
``probes`` fuzz oracle (no duplicate ``rf.probe`` trace events) with
the engine-level guarantee behind it.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.params import Architecture
from repro.core.dataflow import analyze_dataflow
from repro.obs.events import DecisionTrace
from repro.schedule.occupancy import OccupancyEngine
from repro.schedule.rf import max_common_rf as naive_max_common_rf
from repro.core.metrics import cluster_data_size_naive
from repro.schedule.tf import retention_candidates
from repro.workloads.random_gen import random_application


def _engine(seed, fb="2K", iterations=16):
    application, clustering = random_application(seed, iterations=iterations)
    dataflow = analyze_dataflow(application, clustering)
    architecture = Architecture.m1(fb)
    return OccupancyEngine(dataflow, architecture.fb_set_words), dataflow


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=5000), st.sampled_from(["1K", "2K", "4K"]))
def test_no_duplicate_probe_evaluations(seed, fb):
    engine, dataflow = _engine(seed, fb)
    rf = engine.max_common_rf()
    # Every evaluation landed on a distinct (keep set, rf) key.
    assert engine.probe_evaluations == len(engine._probe_memo)
    # Result matches the from-scratch search.
    assert rf == naive_max_common_rf(
        dataflow, engine.fb_set_words,
        occupancy_fn=cluster_data_size_naive,
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_repeat_search_runs_zero_new_sweeps(seed):
    engine, _ = _engine(seed)
    first = engine.max_common_rf()
    evaluated = engine.probe_evaluations
    assert engine.max_common_rf() == first
    assert engine.probe_evaluations == evaluated


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_keep_set_fingerprints_are_separate(seed):
    engine, dataflow = _engine(seed)
    candidates = retention_candidates(dataflow)
    if not candidates:
        return
    keeps = (candidates[0],)
    bare = engine.max_common_rf()
    evaluated = engine.probe_evaluations
    with_keep = engine.max_common_rf(keeps=keeps)
    # A different keep set is a different fingerprint: it must probe
    # for itself, not reuse the bare verdicts...
    assert engine.probe_evaluations > evaluated
    assert engine.probe_evaluations == len(engine._probe_memo)
    # ...and repeating either search evaluates nothing further.
    evaluated = engine.probe_evaluations
    assert engine.max_common_rf() == bare
    assert engine.max_common_rf(keeps=keeps) == with_keep
    assert engine.probe_evaluations == evaluated
    assert with_keep == naive_max_common_rf(
        dataflow, engine.fb_set_words, keeps=keeps,
        occupancy_fn=cluster_data_size_naive,
    )


def test_trace_records_each_evaluation_once():
    engine, _ = _engine(7, fb="2K")
    engine.recorder = DecisionTrace()
    engine.max_common_rf()
    probed = [
        event.detail["rf"]
        for event in engine.recorder.of_kind("rf.probe")
    ]
    assert len(probed) == engine.probe_evaluations
    assert len(probed) == len(set(probed))
    # Memo hits stay silent: a repeat search adds no events.
    engine.max_common_rf()
    assert len(list(engine.recorder.of_kind("rf.probe"))) == len(probed)
