"""Tests for the kernel scheduler [7], context scheduler [4] and the
analytic estimator."""

import pytest

from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.arch.machine import MorphoSysM1
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import ContextScheduler, DmaPolicy, DmaWorkItem
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.estimate import estimate_execution_cycles, visit_windows
from repro.schedule.kernel_scheduler import (
    KernelScheduler,
    enumerate_partitions,
)
from repro.sim.engine import Simulator


class TestEnumeratePartitions:
    def test_counts_are_powers_of_two(self):
        for count in range(1, 7):
            partitions = list(enumerate_partitions(count))
            assert len(partitions) == 2 ** (count - 1)

    def test_each_partition_sums(self):
        for sizes in enumerate_partitions(5):
            assert sum(sizes) == 5
            assert all(size >= 1 for size in sizes)

    def test_unique(self):
        partitions = list(enumerate_partitions(6))
        assert len(partitions) == len(set(partitions))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            list(enumerate_partitions(0))


class TestKernelScheduler:
    def test_explores_and_returns_best(self, sharing_app, m1_medium):
        explorer = KernelScheduler(
            m1_medium, CompleteDataScheduler(m1_medium)
        )
        result = explorer.explore(sharing_app)
        assert result.candidates_evaluated >= 1
        assert result.estimated_cycles > 0
        # The winner must be at least as good as per-kernel clustering.
        per_kernel = CompleteDataScheduler(m1_medium).schedule(
            sharing_app, Clustering.per_kernel(sharing_app)
        )
        assert result.estimated_cycles <= estimate_execution_cycles(
            per_kernel, m1_medium
        )

    def test_skips_infeasible_partitions(self, multi_kernel_app):
        # 500 words: partitions like (2,2) peak at 450 and fit; the
        # single-cluster partition peaks at 600 and is rejected.
        arch = Architecture.m1(500)
        explorer = KernelScheduler(arch, DataScheduler(arch))
        result = explorer.explore(multi_kernel_app)
        assert result.candidates_infeasible >= 1
        assert result.candidates_evaluated >= 1

    def test_raises_when_nothing_fits(self, sharing_app):
        arch = Architecture.m1(300)
        explorer = KernelScheduler(arch, DataScheduler(arch))
        with pytest.raises(InfeasibleScheduleError):
            explorer.explore(sharing_app)

    def test_beam_search_used_beyond_limit(self, sharing_app, m1_medium):
        explorer = KernelScheduler(
            m1_medium, CompleteDataScheduler(m1_medium),
            exhaustive_limit=2, beam_width=4,
        )
        result = explorer.explore(sharing_app)
        assert result.estimated_cycles > 0

    def test_invalid_params(self, m1_medium):
        with pytest.raises(ValueError):
            KernelScheduler(m1_medium, DataScheduler(m1_medium),
                            exhaustive_limit=0)
        with pytest.raises(ValueError):
            KernelScheduler(m1_medium, DataScheduler(m1_medium),
                            beam_width=0)


class TestContextScheduler:
    def _items(self):
        return [
            DmaWorkItem("store", "st1", 10),
            DmaWorkItem("load", "ld1", 10),
            DmaWorkItem("context", "ctx1", 10),
            DmaWorkItem("load", "ld2", 10),
        ]

    def test_contexts_first_order(self):
        ordered = ContextScheduler(DmaPolicy.CONTEXTS_FIRST).order_window(
            self._items()
        )
        assert [item.category for item in ordered] == \
            ["context", "store", "load", "load"]

    def test_loads_first_order(self):
        ordered = ContextScheduler(DmaPolicy.LOADS_FIRST).order_window(
            self._items()
        )
        assert [item.category for item in ordered] == \
            ["load", "load", "context", "store"]

    def test_stores_first_order(self):
        ordered = ContextScheduler(DmaPolicy.STORES_FIRST).order_window(
            self._items()
        )
        assert ordered[0].category == "store"

    def test_stable_within_category(self):
        ordered = ContextScheduler(DmaPolicy.CONTEXTS_FIRST).order_window(
            self._items()
        )
        loads = [item.label for item in ordered if item.category == "load"]
        assert loads == ["ld1", "ld2"]

    def test_bad_item_rejected(self):
        with pytest.raises(ValueError):
            DmaWorkItem("teleport", "x", 10)
        with pytest.raises(ValueError):
            DmaWorkItem("load", "x", 0)


class TestEstimator:
    def test_windows_shape(self, sharing_app, sharing_clustering, m1_medium):
        schedule = DataScheduler(m1_medium).schedule(
            sharing_app, sharing_clustering
        )
        windows = visit_windows(schedule, m1_medium)
        assert len(windows) == schedule.rounds * len(sharing_clustering)
        assert all(compute > 0 for compute, _, _ in windows)

    def test_estimate_tracks_simulation(self, sharing_app,
                                         sharing_clustering, m1_medium):
        """The analytic estimate stays within 25% of the event-driven
        simulator for all three schedulers."""
        for scheduler_cls in (BasicScheduler, DataScheduler,
                              CompleteDataScheduler):
            schedule = scheduler_cls(m1_medium).schedule(
                sharing_app, sharing_clustering
            )
            estimate = estimate_execution_cycles(schedule, m1_medium)
            report = Simulator(MorphoSysM1(m1_medium)).run(
                generate_program(schedule)
            )
            assert abs(estimate - report.total_cycles) <= \
                0.25 * report.total_cycles, scheduler_cls.name

    def test_estimate_orders_schedulers(self, sharing_app,
                                        sharing_clustering, m1_medium):
        basic = estimate_execution_cycles(
            BasicScheduler(m1_medium).schedule(
                sharing_app, sharing_clustering
            ), m1_medium,
        )
        cds = estimate_execution_cycles(
            CompleteDataScheduler(m1_medium).schedule(
                sharing_app, sharing_clustering
            ), m1_medium,
        )
        assert cds < basic
