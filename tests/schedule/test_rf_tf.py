"""Tests for reuse-factor computation and time-factor ranking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import total_data_size
from repro.core.reuse import SharedData, SharedResult
from repro.schedule.rf import fits, max_common_rf
from repro.schedule.tf import (
    rank_by_time_factor,
    retention_candidates,
    time_factor,
)
from repro.workloads.random_gen import random_application


class TestMaxCommonRf:
    def test_zero_when_infeasible(self, sharing_dataflow):
        assert max_common_rf(sharing_dataflow, 100) == 0

    def test_one_when_tight(self, sharing_dataflow):
        # The largest cluster (Cl3) needs 640 words at RF=1.
        assert max_common_rf(sharing_dataflow, 640) == 1
        assert max_common_rf(sharing_dataflow, 639) == 0

    def test_grows_with_memory(self, sharing_dataflow):
        small = max_common_rf(sharing_dataflow, 1024)
        large = max_common_rf(sharing_dataflow, 4096)
        assert large > small >= 1

    def test_capped_by_iterations(self, sharing_dataflow):
        rf = max_common_rf(sharing_dataflow, 10 ** 9)
        assert rf == sharing_dataflow.application.total_iterations

    def test_explicit_cap(self, sharing_dataflow):
        assert max_common_rf(sharing_dataflow, 10 ** 9, max_rf=3) == 3

    def test_fits_agrees(self, sharing_dataflow):
        rf = max_common_rf(sharing_dataflow, 2048)
        assert fits(sharing_dataflow, rf, 2048)
        if rf < sharing_dataflow.application.total_iterations:
            assert not fits(sharing_dataflow, rf + 1, 2048)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2000),
           st.sampled_from([1024, 2048, 8192]))
    def test_result_is_maximal(self, seed, fbs):
        application, clustering = random_application(seed)
        dataflow = analyze_dataflow(application, clustering)
        rf = max_common_rf(dataflow, fbs)
        if rf == 0:
            assert not fits(dataflow, 1, fbs)
            return
        assert fits(dataflow, rf, fbs)
        if rf < application.total_iterations:
            assert not fits(dataflow, rf + 1, fbs)


class TestTimeFactor:
    def _data(self, size, clusters, invariant=False):
        return SharedData(name="x", size=size, fb_set=0,
                          clusters=tuple(clusters), invariant=invariant)

    def _result(self, size, producer, consumers, store_required=False):
        return SharedResult(name="y", size=size, fb_set=0,
                            producer_cluster=producer,
                            consumer_clusters=tuple(consumers),
                            store_required=store_required)

    def test_paper_formula_data(self):
        # TF(D) = |D| * (N-1) / TDS
        item = self._data(100, (0, 2, 4))
        assert time_factor(item, 1000) == pytest.approx(100 * 2 / 1000)

    def test_paper_formula_result(self):
        # TF(R) = |R| * (N+1) / TDS
        item = self._result(100, 0, (2, 4))
        assert time_factor(item, 1000) == pytest.approx(100 * 3 / 1000)

    def test_store_required_reduces_saving(self):
        free = self._result(100, 0, (2,))
        forced = self._result(100, 0, (2,), store_required=True)
        assert time_factor(free, 1000) > time_factor(forced, 1000)

    def test_bad_tds_rejected(self):
        with pytest.raises(ValueError):
            time_factor(self._data(10, (0, 2)), 0)

    def test_ranking_descends(self):
        items = [
            self._data(50, (0, 2)),
            self._result(100, 0, (2, 4)),
            self._data(500, (0, 2)),
        ]
        ranked = rank_by_time_factor(items, 1000)
        factors = [time_factor(item, 1000) for item in ranked]
        assert factors == sorted(factors, reverse=True)

    def test_tie_break_prefers_larger_then_id(self):
        # Same words_avoided: 100*(2-1) == 50*(3-1).  Larger size wins
        # the tie (fewer, bigger retentions fragment the FB less), and
        # the result is independent of input order.
        big = self._data(100, (0, 2))
        small = SharedData(name="z", size=50, fb_set=0, clusters=(0, 2, 4))
        ranked = rank_by_time_factor([big, small], 1000)
        assert ranked[0].size == 100
        assert rank_by_time_factor([small, big], 1000) == ranked

    def test_exact_ties_order_by_candidate_id(self):
        # Fully tied on (words_avoided, size): the stable candidate id
        # decides, regardless of enumeration order.
        first = SharedData(name="a", size=64, fb_set=0, clusters=(0, 2))
        second = SharedData(name="b", size=64, fb_set=0, clusters=(0, 2))
        assert rank_by_time_factor([second, first], 1000) == [first, second]
        assert rank_by_time_factor([first, second], 1000) == [first, second]

    def test_retention_candidates_combines(self, sharing_dataflow):
        candidates = retention_candidates(sharing_dataflow)
        names = {c.name for c in candidates}
        assert names == {"shared", "r1"}

    def test_tds_matches_metric(self, sharing_dataflow):
        assert total_data_size(sharing_dataflow) == 896
