"""Batch compiler vs. reference schedulers: byte-identical, always.

The structure-of-arrays batch engine (:mod:`repro.schedule.batch`)
promises the same contract the incremental occupancy engine does:
``compile_many(requests, engine='batch')`` produces **exactly** the
schedules the per-case schedulers would — same RF, same keeps in the
same order, same cluster plans — and, for infeasible cases, the same
:class:`~repro.errors.InfeasibleScheduleError` payload (message,
cluster, word counts).  Infeasible cases must never poison their batch
neighbors.  These tests enforce the contract over the fuzz generator
matrix (500+ cases), the paper experiments, an options matrix, and the
batch-shape edge cases (empty, single, all-infeasible, mixed).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError
from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import generate_case, regime_names
from repro.schedule.base import ScheduleOptions
from repro.schedule.batch.compiler import CompileRequest, compile_many
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments

_SCHEDULERS = ("basic", "ds", "cds")


def _error_payload(error):
    return (str(error), error.cluster, error.required, error.available)


def _fingerprint(result):
    """One comparable value per result: error payload or schedule."""
    if result.error is not None:
        return ("infeasible", _error_payload(result.error))
    schedule = result.schedule
    return (
        "feasible", schedule.rf, schedule.keeps, schedule.cluster_plans,
        schedule.contexts_per_iteration, schedule.overlap_transfers,
    )


def _assert_batch_matches_reference(requests):
    batch = compile_many(requests, engine="batch")
    reference = compile_many(requests, engine="reference")
    assert len(batch) == len(reference) == len(requests)
    for index, (b, r) in enumerate(zip(batch, reference)):
        assert _fingerprint(b) == _fingerprint(r), (
            f"request {index} ({requests[index].scheduler}) diverged"
        )
        # Full schedule equality, not just the fingerprint: every field
        # of the dataclass tree must agree.
        if b.schedule is not None:
            assert b.schedule == r.schedule, (
                f"request {index}: schedules differ beyond fingerprint"
            )
    return batch


def _case_requests(case: FuzzCase):
    application, clustering = case.build()
    architecture = case.architecture()
    return [
        CompileRequest(name, application, architecture,
                       clustering=clustering)
        for name in _SCHEDULERS
    ]


def test_fuzz_matrix_byte_identical():
    """The acceptance matrix: every regime x 35 seeds x 3 schedulers
    (525+ compile problems) in ONE batch, compared case by case."""
    requests = []
    for regime in regime_names():
        for seed in range(35):
            requests.extend(_case_requests(generate_case(regime, seed)))
    assert len(requests) >= 500
    results = _assert_batch_matches_reference(requests)
    # The matrix must exercise both outcomes, or it proves nothing.
    assert any(r.feasible for r in results)
    assert any(not r.feasible for r in results)


def test_paper_experiments_byte_identical():
    requests = []
    for spec in paper_experiments():
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        requests.extend(
            CompileRequest(name, application, architecture,
                           clustering=clustering)
            for name in _SCHEDULERS
        )
    results = _assert_batch_matches_reference(requests)
    assert all(r.feasible for r in results)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["1K", "2K", "4K", "16K"]),
    st.sampled_from([0, 1, 3]),
    st.sampled_from(["tf", "size", "fifo"]),
)
def test_options_matrix_byte_identical(seed, fb, rf_cap, keep_policy):
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    options = ScheduleOptions(rf_cap=rf_cap, keep_policy=keep_policy)
    _assert_batch_matches_reference([
        CompileRequest(name, application, architecture,
                       clustering=clustering, options=options)
        for name in _SCHEDULERS
    ])


def test_empty_batch():
    assert compile_many([]) == []


def test_single_case_batch():
    application, clustering = random_application(7, iterations=4)
    results = _assert_batch_matches_reference([
        CompileRequest("cds", application, Architecture.m1("4K"),
                       clustering=clustering)
    ])
    assert len(results) == 1 and results[0].feasible


def test_all_infeasible_batch():
    """Every case infeasible: identical error payloads, no schedule."""
    requests = []
    for seed in range(5):
        case = generate_case("tiny_fb", seed)
        case.fb_words = 64
        requests.extend(_case_requests(case))
    results = _assert_batch_matches_reference(requests)
    assert all(not r.feasible for r in results)
    for result in results:
        assert isinstance(result.error, InfeasibleScheduleError)
        with pytest.raises(InfeasibleScheduleError):
            result.unwrap()


def test_mixed_batch_no_neighbor_poisoning():
    """Feasible cases schedule identically whether or not infeasible
    cases share their batch — an infeasible neighbor must not perturb
    the lockstep RF search or keep acceptance of the survivors."""
    feasible_app, feasible_cl = random_application(11, iterations=4)
    architecture = Architecture.m1("4K")
    feasible = [
        CompileRequest(name, feasible_app, architecture,
                       clustering=feasible_cl)
        for name in _SCHEDULERS
    ]
    doomed_case = generate_case("tiny_fb", 0)
    doomed_case.fb_words = 64
    doomed = _case_requests(doomed_case)

    alone = compile_many(feasible, engine="batch")
    # Infeasible requests interleaved before, between, and after.
    mixed_requests = [doomed[0], feasible[0], doomed[1], feasible[1],
                      feasible[2], doomed[2]]
    mixed = compile_many(mixed_requests, engine="batch")
    survivors = [mixed[1], mixed[3], mixed[4]]
    for solo, shared in zip(alone, survivors):
        assert solo.feasible and shared.feasible
        assert solo.schedule == shared.schedule
    for index in (0, 2, 5):
        assert not mixed[index].feasible
    _assert_batch_matches_reference(mixed_requests)
