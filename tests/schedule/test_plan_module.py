"""Tests for the Schedule/ClusterPlan/TransferSummary data structures."""

import pytest

from repro.arch.params import Architecture
from repro.errors import ReproError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.plan import TransferSummary


@pytest.fixture
def cds_schedule(sharing_app, sharing_clustering):
    return CompleteDataScheduler(Architecture.m1("2K")).schedule(
        sharing_app, sharing_clustering
    )


class TestClusterPlan:
    def test_plan_partitions_inputs(self, cds_schedule):
        """loads + kept_inputs exactly cover the cluster's inputs."""
        dataflow = cds_schedule.dataflow
        for plan in cds_schedule.cluster_plans:
            expected = set(dataflow.inputs_of_cluster(plan.cluster_index))
            assert set(plan.loads) | set(plan.kept_inputs) == expected
            assert not set(plan.loads) & set(plan.kept_inputs)

    def test_stores_are_produced_here(self, cds_schedule):
        dataflow = cds_schedule.dataflow
        for plan in cds_schedule.cluster_plans:
            produced = set(dataflow.produced_by_cluster(plan.cluster_index))
            assert set(plan.stores) <= produced
            assert set(plan.retained_outputs) <= produced

    def test_retained_outputs_match_keeps(self, cds_schedule):
        retained = {
            name
            for plan in cds_schedule.cluster_plans
            for name in plan.retained_outputs
        }
        result_keeps = {
            keep.name for keep in cds_schedule.keeps
            if hasattr(keep, "producer_cluster")
        }
        assert retained == result_keeps

    def test_load_store_words(self, cds_schedule):
        dataflow = cds_schedule.dataflow
        plan = cds_schedule.plan_for(0)
        assert plan.load_words(dataflow, 1) == sum(
            dataflow[name].size for name in plan.loads
        )
        assert plan.load_words(dataflow, 3) >= plan.load_words(dataflow, 1)


class TestScheduleValidation:
    def test_bad_rf_rejected(self, cds_schedule):
        import dataclasses
        with pytest.raises(ReproError):
            dataclasses.replace(cds_schedule, rf=0)

    def test_plan_count_checked(self, cds_schedule):
        import dataclasses
        with pytest.raises(ReproError):
            dataclasses.replace(
                cds_schedule, cluster_plans=cds_schedule.cluster_plans[:-1]
            )


class TestTransferSummary:
    def test_totals_consistent(self, cds_schedule):
        summary = TransferSummary.from_schedule(cds_schedule)
        assert summary.total_data_words == (
            summary.total_data_loaded_words + summary.total_data_stored_words
        )
        assert summary.data_words_per_iteration == pytest.approx(
            summary.total_data_words
            / cds_schedule.application.total_iterations
        )

    def test_context_accounting_basic_vs_ds(self, sharing_app,
                                            sharing_clustering):
        arch = Architecture.m1("2K")
        basic = BasicScheduler(arch).schedule(
            sharing_app, sharing_clustering
        ).summary()
        ds = DataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        ).summary()
        per_round = sum(k.context_words for k in sharing_app.kernels)
        assert basic.total_context_words == \
            per_round * sharing_app.total_iterations
        assert ds.total_context_words == per_round * ds.rounds

    def test_avoided_transfers(self, sharing_app, sharing_clustering):
        arch = Architecture.m1("2K")
        ds = DataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        ).summary()
        cds = CompleteDataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        ).summary()
        avoided = cds.data_transfers_avoided_per_iteration(ds)
        assert avoided > 0

    def test_peak_occupancy_reported(self, cds_schedule):
        summary = cds_schedule.summary()
        assert summary.max_peak_occupancy == max(
            plan.peak_occupancy for plan in cds_schedule.cluster_plans
        )
