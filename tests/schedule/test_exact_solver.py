"""The exact retention/RF solver vs brute force and the greedy CDS.

The solver's contract is exhaustive optimality: its ``(RF, keeps)``
choice must tie the best of *every* feasible pair, measured on real
materialised :class:`~repro.schedule.plan.TransferSummary` totals.
Brute force here enumerates that space directly (small generated cases
keep the subset lattice tractable), which also cross-validates the
closed-form :class:`~repro.schedule.exact.traffic.TrafficModel` the
search prunes with.
"""

import itertools

import pytest

from repro.arch.params import Architecture
from repro.core.dataflow import analyze_dataflow
from repro.errors import InfeasibleScheduleError
from repro.fuzz.generator import generate_case, regime_names
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.exact import (
    ExactDataScheduler,
    ExactRetentionSolver,
    TrafficModel,
)
from repro.schedule.occupancy import OccupancyEngine
from repro.schedule.tf import retention_candidates
from repro.workloads.random_gen import random_application


def _materialised_total(architecture, dataflow, rf, keeps):
    """Real TransferSummary total for one (rf, keeps), or None when the
    pair does not fit a frame-buffer set (naive occupancy path)."""
    scheduler = CompleteDataScheduler(architecture)
    try:
        schedule = scheduler._build_schedule(
            dataflow, rf=rf, keeps=keeps, contexts_per_iteration=False
        )
    except InfeasibleScheduleError:
        return None
    summary = schedule.summary()
    return summary.total_data_words + summary.total_context_words


def _brute_force_best(architecture, dataflow):
    """Exhaustive minimum over every (rf, keep subset), or None."""
    candidates = retention_candidates(dataflow)
    best = None
    for rf in range(1, dataflow.application.total_iterations + 1):
        for r in range(len(candidates) + 1):
            for subset in itertools.combinations(candidates, r):
                total = _materialised_total(
                    architecture, dataflow, rf, subset
                )
                if total is not None and (best is None or total < best):
                    best = total
    return best


def _small_cases(max_candidates=7, per_regime=6):
    """Generated cases whose candidate list keeps 2^k enumerable."""
    cases = []
    for regime in regime_names():
        picked = 0
        for seed in range(30):
            if picked >= per_regime:
                break
            case = generate_case(regime, seed)
            application, clustering = case.build()
            dataflow = analyze_dataflow(application, clustering)
            if len(retention_candidates(dataflow)) > max_candidates:
                continue
            if application.total_iterations > 24:
                continue
            cases.append((f"{regime}-{seed}", case))
            picked += 1
    return cases


class TestBruteForceEquivalence:
    @pytest.mark.parametrize(
        "label,case", _small_cases(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_solver_ties_exhaustive_enumeration(self, label, case):
        application, clustering = case.build()
        architecture = case.architecture()
        dataflow = analyze_dataflow(application, clustering)
        engine = OccupancyEngine(dataflow, architecture.fb_set_words)
        solution = ExactRetentionSolver(dataflow, engine=engine).solve()
        brute = _brute_force_best(architecture, dataflow)
        if solution is None:
            assert brute is None
            return
        assert solution.complete, "budget must not truncate small cases"
        assert brute is not None
        assert solution.traffic_words == brute
        # The model total the search minimised is the real total.
        materialised = _materialised_total(
            architecture, dataflow, solution.rf, solution.keeps
        )
        assert materialised == solution.traffic_words


class TestExactVsGreedy:
    def test_exact_never_worse_across_regimes(self):
        for regime in regime_names():
            for seed in range(4):
                case = generate_case(regime, seed)
                application, clustering = case.build()
                architecture = case.architecture()
                dataflow = analyze_dataflow(application, clustering)
                try:
                    greedy = CompleteDataScheduler(architecture).schedule(
                        application, clustering, dataflow=dataflow
                    )
                except InfeasibleScheduleError:
                    with pytest.raises(InfeasibleScheduleError):
                        ExactDataScheduler(architecture).schedule(
                            application, clustering, dataflow=dataflow
                        )
                    continue
                exact_scheduler = ExactDataScheduler(architecture)
                exact = exact_scheduler.schedule(
                    application, clustering, dataflow=dataflow
                )
                greedy_summary = greedy.summary()
                exact_summary = exact.summary()
                greedy_total = (greedy_summary.total_data_words
                                + greedy_summary.total_context_words)
                exact_total = (exact_summary.total_data_words
                               + exact_summary.total_context_words)
                assert exact_total <= greedy_total
                solution = exact_scheduler.last_solution
                assert solution.traffic_words == exact_total
                assert solution.greedy_traffic_words == greedy_total
                # The solver's greedy mirror IS the CDS choice.
                assert solution.greedy_rf == greedy.rf
                assert solution.greedy_keeps == greedy.keeps

    def test_greedy_mirror_matches_cds_on_keep_policies(self, sharing_app,
                                                        sharing_clustering,
                                                        m1_medium):
        from repro.schedule.base import ScheduleOptions

        for policy in ("tf", "size", "fifo"):
            options = ScheduleOptions(keep_policy=policy)
            greedy = CompleteDataScheduler(m1_medium, options).schedule(
                sharing_app, sharing_clustering
            )
            scheduler = ExactDataScheduler(m1_medium, options)
            exact = scheduler.schedule(sharing_app, sharing_clustering)
            solution = scheduler.last_solution
            assert solution.greedy_rf == greedy.rf
            assert solution.greedy_keeps == greedy.keeps
            exact_summary = exact.summary()
            greedy_summary = greedy.summary()
            assert (exact_summary.total_data_words
                    + exact_summary.total_context_words) <= (
                greedy_summary.total_data_words
                + greedy_summary.total_context_words)


class TestBudgets:
    def test_node_budget_truncation_still_at_least_greedy(self):
        # The pinned gap anchor needs a real search (greedy is
        # suboptimal on it), so a one-node budget must truncate.
        from pathlib import Path

        from repro.fuzz.case import FuzzCase

        case = FuzzCase.load(
            Path("tests/corpus") / "gap-anchor-baseline-seed6.json"
        )
        application, clustering = case.build()
        scheduler = ExactDataScheduler(case.architecture(), max_nodes=1)
        scheduler.schedule(application, clustering)
        solution = scheduler.last_solution
        assert not solution.complete
        # The incumbent is seeded with greedy, so a fully truncated
        # search still returns exactly the greedy choice.
        assert solution.traffic_words == solution.greedy_traffic_words
        assert solution.rf == solution.greedy_rf
        assert solution.keeps == solution.greedy_keeps

    def test_wallclock_budget_expired_still_at_least_greedy(
        self, sharing_app, sharing_clustering, m1_medium
    ):
        scheduler = ExactDataScheduler(m1_medium, budget_ms=0.0)
        scheduler.schedule(sharing_app, sharing_clustering)
        solution = scheduler.last_solution
        assert solution.traffic_words <= solution.greedy_traffic_words

    def test_unbudgeted_run_is_complete_and_deterministic(
        self, sharing_app, sharing_clustering, m1_medium
    ):
        runs = []
        for _ in range(2):
            scheduler = ExactDataScheduler(m1_medium)
            scheduler.schedule(sharing_app, sharing_clustering)
            runs.append(scheduler.last_solution)
        first, second = runs
        assert first.complete
        assert first == second


class TestInfeasiblePayloadParity:
    """Satellite: an infeasible case renders the same payload from
    ``exact`` as from ``cds`` up to the scheduler-name prefix."""

    def _both_payloads(self, application, clustering, architecture):
        payloads = []
        for scheduler_cls, prefix in (
            (CompleteDataScheduler, "cds: "),
            (ExactDataScheduler, "exact: "),
        ):
            with pytest.raises(InfeasibleScheduleError) as excinfo:
                scheduler_cls(architecture).schedule(
                    application, clustering
                )
            exc = excinfo.value
            message = str(exc)
            # Static-capacity diagnostics come from shared code and
            # carry no scheduler prefix; scheduler-specific ones do.
            if message.startswith(prefix):
                message = message[len(prefix):]
            payloads.append((
                message, exc.cluster, exc.required, exc.available,
            ))
        return payloads

    def test_rf1_diagnostic_is_identical(self):
        application, clustering = random_application(13)
        cds, exact = self._both_payloads(
            application, clustering, Architecture.m1(300)
        )
        assert cds == exact
        assert "RF=1" in cds[0] or "even at RF=1" in cds[0]

    def test_static_capacity_diagnostic_is_identical(self):
        # deep_chains seed 0 overflows a context-memory block: a
        # *static* infeasibility that fires before any solver runs.
        case = generate_case("deep_chains", 0)
        application, clustering = case.build()
        dataflow = analyze_dataflow(application, clustering)
        architecture = case.architecture()
        try:
            CompleteDataScheduler(architecture).schedule(
                application, clustering, dataflow=dataflow
            )
        except InfeasibleScheduleError:
            cds, exact = self._both_payloads(
                application, clustering, architecture
            )
            assert cds == exact
        else:
            pytest.skip("generator no longer makes this case infeasible")

    def test_cross_set_guard_matches_cds_wording(self, sharing_app,
                                                 sharing_clustering):
        from repro.schedule.base import ScheduleOptions

        architecture = Architecture.m1(4096)
        assert not architecture.fb_cross_set_access
        options = ScheduleOptions(cross_set_retention=True)
        messages = []
        for scheduler_cls, prefix in (
            (CompleteDataScheduler, "cds: "),
            (ExactDataScheduler, "exact: "),
        ):
            with pytest.raises(InfeasibleScheduleError) as excinfo:
                scheduler_cls(architecture, options).schedule(
                    sharing_app, sharing_clustering
                )
            assert str(excinfo.value).startswith(prefix)
            messages.append(str(excinfo.value)[len(prefix):])
        assert messages[0] == messages[1]


class TestTrafficModel:
    def test_model_totals_match_summaries_on_paper_experiments(self):
        from repro.workloads.spec import paper_experiments

        for spec in paper_experiments():
            application, clustering = spec.build()
            architecture = Architecture.m1(spec.fb_words)
            dataflow = analyze_dataflow(application, clustering)
            model = TrafficModel(dataflow)
            schedule = CompleteDataScheduler(architecture).schedule(
                application, clustering, dataflow=dataflow
            )
            summary = schedule.summary()
            assert model.total_traffic(schedule.rf, schedule.keeps) == (
                summary.total_data_words + summary.total_context_words
            ), spec.id

    def test_savings_are_additive(self, sharing_app, sharing_clustering,
                                  m1_medium):
        dataflow = analyze_dataflow(sharing_app, sharing_clustering)
        model = TrafficModel(dataflow)
        candidates = retention_candidates(dataflow)
        assert candidates, "fixture must expose retention candidates"
        rf = 2
        base = model.data_traffic(rf, ())
        together = model.data_traffic(rf, candidates)
        individual = sum(model.keep_saving(c, rf) for c in candidates)
        assert base - together == individual


class TestPinnedGapAnchors:
    """The two corpus anchors where greedy is provably suboptimal.

    Both are RF-first greediness: lowering the common RF by one admits
    an extra keep worth more than the added context traffic.  They pin
    the measured gap — if the greedy CDS ever starts matching exact
    here, or the gap widens, the heuristic changed.
    """

    @pytest.mark.parametrize("stem,gap", [
        ("gap-anchor-baseline-seed6", 578),
        ("gap-anchor-baseline-seed12", 816),
    ])
    def test_anchor_gap_is_pinned(self, stem, gap):
        from pathlib import Path

        from repro.fuzz.case import FuzzCase

        path = Path("tests/corpus") / f"{stem}.json"
        case = FuzzCase.load(path)
        application, clustering = case.build()
        architecture = case.architecture()
        dataflow = analyze_dataflow(application, clustering)
        greedy = CompleteDataScheduler(architecture).schedule(
            application, clustering, dataflow=dataflow
        )
        scheduler = ExactDataScheduler(architecture)
        scheduler.schedule(application, clustering, dataflow=dataflow)
        solution = scheduler.last_solution
        assert solution.complete
        assert solution.greedy_rf == greedy.rf
        assert solution.gap_words == gap
        # The exact solution trades RF down for an extra keep.
        assert solution.rf == greedy.rf - 1
        assert len(solution.keeps) == len(greedy.keeps) + 1
