"""Tests for dataflow analysis (the information extractor)."""

import pytest

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import ObjectClass, analyze_dataflow
from repro.errors import DataflowError


class TestClassification:
    def test_external_data(self, sharing_dataflow):
        assert sharing_dataflow["d"].object_class is ObjectClass.EXTERNAL_DATA
        assert sharing_dataflow["d"].is_external
        assert sharing_dataflow["d"].producer is None

    def test_shared_result(self, sharing_dataflow):
        info = sharing_dataflow["r1"]
        assert info.object_class is ObjectClass.SHARED_RESULT
        assert info.producer == "k1"
        assert info.producer_cluster == 0
        assert info.consumer_clusters == (1, 2)

    def test_final_result(self, sharing_dataflow):
        info = sharing_dataflow["out"]
        assert info.object_class is ObjectClass.FINAL_RESULT
        assert info.is_final

    def test_intermediate_within_cluster(self, multi_kernel_app,
                                          multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        assert dataflow["t1"].object_class is ObjectClass.INTERMEDIATE_RESULT
        assert dataflow["t2"].object_class is ObjectClass.INTERMEDIATE_RESULT

    def test_final_and_consumed_later_is_shared(self, multi_kernel_app,
                                                multi_clustering):
        # c_out is final AND consumed by cluster 1.
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        info = dataflow["c_out"]
        assert info.object_class is ObjectClass.SHARED_RESULT
        assert info.is_final

    def test_invariant_passthrough(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        dataflow = analyze_dataflow(invariant_app, clustering)
        assert dataflow["table"].invariant
        assert not dataflow["d"].invariant

    def test_dead_result_rejected(self):
        app_builder = (
            Application.build("dead", total_iterations=1)
            .data("d", 8)
            .kernel("k", context_words=1, cycles=1, inputs=["d"],
                    outputs=["o", "waste"],
                    result_sizes={"o": 8, "waste": 8})
            .final("o")
        )
        app = app_builder.finish()
        with pytest.raises(DataflowError, match="dead on arrival"):
            analyze_dataflow(app, Clustering.per_kernel(app))


class TestPerClusterQueries:
    def test_inputs_of_cluster(self, sharing_dataflow):
        assert sharing_dataflow.inputs_of_cluster(0) == ("d", "shared")
        assert sharing_dataflow.inputs_of_cluster(1) == ("r1",)
        assert sharing_dataflow.inputs_of_cluster(2) == ("r2", "shared", "r1")

    def test_external_vs_imported(self, sharing_dataflow):
        assert sharing_dataflow.external_inputs_of_cluster(2) == ("shared",)
        assert sharing_dataflow.imported_results_of_cluster(2) == ("r2", "r1")

    def test_produced_by_cluster(self, sharing_dataflow):
        assert sharing_dataflow.produced_by_cluster(0) == ("r1",)

    def test_shared_results_of_cluster(self, sharing_dataflow):
        assert sharing_dataflow.shared_results_of_cluster(0) == ("r1",)
        assert sharing_dataflow.shared_results_of_cluster(2) == ()

    def test_final_results_of_cluster(self, sharing_dataflow):
        assert sharing_dataflow.final_results_of_cluster(2) == ("out",)

    def test_intermediates_of_cluster(self, multi_kernel_app,
                                      multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        assert set(dataflow.intermediates_of_cluster(0)) == {"t1", "t2"}


class TestLiveness:
    def test_last_use_in_cluster(self, multi_kernel_app, multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        assert dataflow.last_use_in_cluster("a", 0) == "k3"
        assert dataflow.last_use_in_cluster("t1", 0) == "k2"
        assert dataflow.last_use_in_cluster("a", 1) is None

    def test_dead_after_kernel_releases_inputs(self, multi_kernel_app,
                                               multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        assert dataflow.dead_after_kernel(0, "k2") == ("t1", "b")
        # 'a' is still needed by k3 after k1.
        assert "a" not in dataflow.dead_after_kernel(0, "k1")

    def test_dead_after_kernel_keeps_final(self, multi_kernel_app,
                                           multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        # c_out is final; not reported dead even at its last use.
        assert "c_out" not in dataflow.dead_after_kernel(1, "k4")

    def test_dead_after_kernel_wrong_cluster(self, multi_kernel_app,
                                             multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        with pytest.raises(DataflowError):
            dataflow.dead_after_kernel(0, "k4")

    def test_consumed_after(self, sharing_dataflow):
        assert sharing_dataflow["r1"].consumed_after(0)
        assert sharing_dataflow["r1"].consumed_after(1)
        assert not sharing_dataflow["r1"].consumed_after(2)

    def test_words_for_invariant(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        dataflow = analyze_dataflow(invariant_app, clustering)
        assert dataflow["table"].words_for(4) == 128
        assert dataflow["d"].words_for(4) == 1024


class TestContainerProtocol:
    def test_getitem_missing(self, sharing_dataflow):
        with pytest.raises(KeyError):
            sharing_dataflow["nope"]

    def test_contains(self, sharing_dataflow):
        assert "d" in sharing_dataflow
        assert "nope" not in sharing_dataflow

    def test_iter_covers_all_objects(self, sharing_app, sharing_dataflow):
        names = {info.name for info in sharing_dataflow}
        assert names == set(sharing_app.objects)
