"""Tests for shared data/result detection (D_i..j and R_i,j..k)."""

import pytest

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.reuse import find_shared_data, find_shared_results


class TestSharedData:
    def test_same_set_sharing_found(self, sharing_dataflow):
        shared = find_shared_data(sharing_dataflow)
        assert len(shared) == 1
        item = shared[0]
        assert item.name == "shared"
        assert item.fb_set == 0
        assert item.clusters == (0, 2)

    def test_cross_set_only_sharing_not_found(self):
        app = (
            Application.build("cross", total_iterations=2)
            .data("d", 64)
            .data("both", 32)
            .kernel("k1", context_words=8, cycles=10, inputs=["d", "both"],
                    outputs=["r1"], result_sizes={"r1": 16})
            .kernel("k2", context_words=8, cycles=10, inputs=["r1", "both"],
                    outputs=["out"], result_sizes={"out": 16})
            .final("out")
            .finish()
        )
        dataflow = analyze_dataflow(app, Clustering.per_kernel(app))
        assert find_shared_data(dataflow) == []

    def test_transfers_avoided_is_n_minus_1(self, sharing_dataflow):
        item = find_shared_data(sharing_dataflow)[0]
        assert item.n_users == 2
        assert item.transfers_avoided == 1
        assert item.words_avoided == 128

    def test_span_and_residency(self, sharing_dataflow):
        item = find_shared_data(sharing_dataflow)[0]
        assert item.span == (0, 2)
        assert item.resident_for(0)
        assert item.resident_for(1)  # passes through while Cl2 runs
        assert item.resident_for(2)
        assert not item.resident_for(3)

    def test_label(self, sharing_dataflow):
        assert find_shared_data(sharing_dataflow)[0].label == "D1..3"

    def test_invariant_flag_propagates(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        dataflow = analyze_dataflow(invariant_app, clustering)
        item = find_shared_data(dataflow)[0]
        assert item.invariant

    def test_both_sets_can_share_independently(self):
        """A datum consumed by clusters 0,2 (set 0) and 1,3 (set 1)
        yields one candidate per set."""
        app = (
            Application.build("two-sets", total_iterations=2)
            .data("t", 32)
            .data("d1", 16).data("d2", 16).data("d3", 16).data("d4", 16)
            .kernel("k1", context_words=8, cycles=10, inputs=["d1", "t"],
                    outputs=["r1"], result_sizes={"r1": 8})
            .kernel("k2", context_words=8, cycles=10, inputs=["d2", "t", "r1"],
                    outputs=["r2"], result_sizes={"r2": 8})
            .kernel("k3", context_words=8, cycles=10, inputs=["d3", "t", "r2"],
                    outputs=["r3"], result_sizes={"r3": 8})
            .kernel("k4", context_words=8, cycles=10, inputs=["d4", "t", "r3"],
                    outputs=["out"], result_sizes={"out": 8})
            .final("out")
            .finish()
        )
        dataflow = analyze_dataflow(app, Clustering.per_kernel(app))
        shared = find_shared_data(dataflow)
        assert len(shared) == 2
        assert {item.fb_set for item in shared} == {0, 1}
        assert shared[0].clusters == (0, 2)
        assert shared[1].clusters == (1, 3)


class TestSharedResults:
    def test_same_set_result_found(self, sharing_dataflow):
        results = find_shared_results(sharing_dataflow)
        assert len(results) == 1
        item = results[0]
        assert item.name == "r1"
        assert item.producer_cluster == 0
        assert item.consumer_clusters == (2,)
        assert item.fb_set == 0

    def test_store_required_when_cross_set_consumer(self, sharing_dataflow):
        # r1 is also consumed by cluster 1 (set 1) -> store required.
        item = find_shared_results(sharing_dataflow)[0]
        assert item.store_required
        assert item.transfers_avoided == 1  # only the same-set reload

    def test_store_not_required_when_private(self):
        app = (
            Application.build("private", total_iterations=2)
            .data("d1", 16).data("d2", 16).data("d3", 16)
            .kernel("k1", context_words=8, cycles=10, inputs=["d1"],
                    outputs=["r1"], result_sizes={"r1": 8})
            .kernel("k2", context_words=8, cycles=10, inputs=["d2"],
                    outputs=["r2"], result_sizes={"r2": 8})
            .kernel("k3", context_words=8, cycles=10,
                    inputs=["d3", "r1", "r2"],
                    outputs=["out"], result_sizes={"out": 8})
            .final("out")
            .finish()
        )
        dataflow = analyze_dataflow(app, Clustering.per_kernel(app))
        results = find_shared_results(dataflow)
        r1 = next(item for item in results if item.name == "r1")
        assert not r1.store_required
        assert r1.transfers_avoided == 2  # one store + one load avoided

    def test_final_shared_result_still_stored(self, multi_kernel_app,
                                              multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        results = find_shared_results(dataflow)
        # c_out produced in cluster 0 (set 0), consumed in cluster 1
        # (set 1): cross-set only, so no same-set candidate exists.
        assert results == []

    def test_label(self, sharing_dataflow):
        assert find_shared_results(sharing_dataflow)[0].label == "R1,3"

    def test_span(self, sharing_dataflow):
        item = find_shared_results(sharing_dataflow)[0]
        assert item.span == (0, 2)
        assert item.resident_for(1)
