"""Tests for DataObject and Kernel value objects."""

import pytest

from repro.core.dataobj import DataObject
from repro.core.kernel import Kernel
from repro.errors import ApplicationError


class TestDataObject:
    def test_basic(self):
        obj = DataObject("d", 64)
        assert obj.size == 64
        assert not obj.invariant

    def test_of_parses_k_sizes(self):
        assert DataObject.of("d", "0.5K").size == 512

    def test_str(self):
        assert str(DataObject("d", 2048)) == "d[2K]"

    def test_zero_size_rejected(self):
        with pytest.raises(ApplicationError):
            DataObject("d", 0)

    def test_empty_name_rejected(self):
        with pytest.raises(ApplicationError):
            DataObject("", 8)

    def test_forbidden_characters_rejected(self):
        with pytest.raises(ApplicationError):
            DataObject("a b", 8)

    def test_shape_validated(self):
        with pytest.raises(ApplicationError):
            DataObject("d", 8, element_shape=(0, 4))

    def test_shape_normalised_to_ints(self):
        obj = DataObject("d", 64, element_shape=(8.0, 8.0))
        assert obj.element_shape == (8, 8)

    def test_invariant_flag(self):
        assert DataObject("t", 8, invariant=True).invariant

    def test_frozen(self):
        obj = DataObject("d", 8)
        with pytest.raises(Exception):
            obj.size = 9


class TestKernel:
    def test_basic(self):
        kernel = Kernel("k", context_words=8, cycles=100,
                        inputs=("a",), outputs=("b",))
        assert kernel.reads("a")
        assert kernel.writes("b")
        assert not kernel.reads("b")

    def test_str(self):
        text = str(Kernel("k", context_words=8, cycles=100))
        assert "k" in text and "8" in text

    def test_zero_context_words_rejected(self):
        with pytest.raises(ApplicationError):
            Kernel("k", context_words=0, cycles=100)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ApplicationError):
            Kernel("k", context_words=8, cycles=0)

    def test_non_int_cycles_rejected(self):
        with pytest.raises(ApplicationError):
            Kernel("k", context_words=8, cycles=1.5)

    def test_duplicate_input_rejected(self):
        with pytest.raises(ApplicationError, match="twice"):
            Kernel("k", context_words=8, cycles=1, inputs=("a", "a"))

    def test_duplicate_output_rejected(self):
        with pytest.raises(ApplicationError, match="twice"):
            Kernel("k", context_words=8, cycles=1, outputs=("b", "b"))

    def test_in_place_update_rejected(self):
        with pytest.raises(ApplicationError, match="in-place"):
            Kernel("k", context_words=8, cycles=1,
                   inputs=("x",), outputs=("x",))

    def test_inputs_normalised_to_tuple(self):
        kernel = Kernel("k", context_words=8, cycles=1, inputs=["a", "b"])
        assert kernel.inputs == ("a", "b")
