"""Deeper keep-occupancy scenarios for ``cluster_data_size``."""

import pytest

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import cluster_data_size
from repro.core.reuse import SharedData, SharedResult, find_shared_data


def _five_cluster_app():
    """Five single-kernel clusters; 'tbl' feeds clusters 1 and 5
    (indices 0 and 4, both set 0); cluster 3 (index 2, set 0) is a
    pass-through the keep must survive."""
    return (
        Application.build("five", total_iterations=8)
        .data("tbl", 100)
        .data("a", 50).data("b", 50).data("c", 50).data("d", 50)
        .kernel("k1", context_words=8, cycles=10, inputs=["a", "tbl"],
                outputs=["r1"], result_sizes={"r1": 40})
        .kernel("k2", context_words=8, cycles=10, inputs=["b", "r1"],
                outputs=["r2"], result_sizes={"r2": 40})
        .kernel("k3", context_words=8, cycles=10, inputs=["c", "r2"],
                outputs=["r3"], result_sizes={"r3": 40})
        .kernel("k4", context_words=8, cycles=10, inputs=["d", "r3"],
                outputs=["r4"], result_sizes={"r4": 40})
        .kernel("k5", context_words=8, cycles=10, inputs=["r4", "tbl"],
                outputs=["out"], result_sizes={"out": 30})
        .final("out")
        .finish()
    )


class TestKeepResidency:
    def test_pass_through_cluster_charged(self):
        app = _five_cluster_app()
        clustering = Clustering.per_kernel(app)
        dataflow = analyze_dataflow(app, clustering)
        keeps = find_shared_data(dataflow)
        assert keeps and keeps[0].name == "tbl"
        assert keeps[0].clusters == (0, 4)
        # Cluster 2 (set 0, between the consumers) pays the residency.
        base = cluster_data_size(dataflow, 2, 1)
        kept = cluster_data_size(dataflow, 2, 1, keeps)
        assert kept == base + 100

    def test_same_set_non_span_cluster_not_charged(self):
        app = _five_cluster_app()
        clustering = Clustering.per_kernel(app)
        dataflow = analyze_dataflow(app, clustering)
        keeps = find_shared_data(dataflow)
        # Cluster 1 and 3 are on set 1: untouched by a set-0 keep.
        for index in (1, 3):
            assert cluster_data_size(dataflow, index, 1, keeps) == \
                cluster_data_size(dataflow, index, 1)

    def test_rf_scales_variant_keep(self):
        app = _five_cluster_app()
        clustering = Clustering.per_kernel(app)
        dataflow = analyze_dataflow(app, clustering)
        keeps = find_shared_data(dataflow)
        at_rf1 = cluster_data_size(dataflow, 2, 1, keeps)
        at_rf3 = cluster_data_size(dataflow, 2, 3, keeps)
        # The kept (variant) table holds RF instances.
        base1 = cluster_data_size(dataflow, 2, 1)
        base3 = cluster_data_size(dataflow, 2, 3)
        assert at_rf1 - base1 == 100
        assert at_rf3 - base3 == 300

    def test_invariant_keep_flat_in_rf(self):
        app = (
            Application.build("inv", total_iterations=8)
            .data("tbl", 100, invariant=True)
            .data("a", 50).data("b", 50).data("c", 50)
            .kernel("k1", context_words=8, cycles=10,
                    inputs=["a", "tbl"],
                    outputs=["r1"], result_sizes={"r1": 40})
            .kernel("k2", context_words=8, cycles=10, inputs=["b", "r1"],
                    outputs=["r2"], result_sizes={"r2": 40})
            .kernel("k3", context_words=8, cycles=10,
                    inputs=["c", "r2", "tbl"],
                    outputs=["out"], result_sizes={"out": 30})
            .final("out")
            .finish()
        )
        clustering = Clustering.per_kernel(app)
        dataflow = analyze_dataflow(app, clustering)
        keeps = find_shared_data(dataflow)
        assert keeps[0].invariant
        # Consuming cluster 0: table is an input either way; the keep
        # contributes the same single copy at any RF.
        for rf in (1, 2, 4):
            base = cluster_data_size(dataflow, 0, rf)
            kept = cluster_data_size(dataflow, 0, rf, keeps)
            assert kept <= base + 100  # never more than one extra copy

    def test_result_keep_charged_conservatively(self, sharing_dataflow):
        """A kept shared result is charged from cluster start (the
        sweep's documented conservatism): the peak with the keep is
        never below the peak without it."""
        from repro.core.reuse import find_shared_results
        keeps = find_shared_results(sharing_dataflow)
        for cluster in sharing_dataflow.clustering.on_set(0):
            assert cluster_data_size(
                sharing_dataflow, cluster.index, 2, keeps
            ) >= cluster_data_size(sharing_dataflow, cluster.index, 2) - 384
