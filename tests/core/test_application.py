"""Tests for the application model and its validation."""

import pytest

from repro.core.application import Application
from repro.core.dataobj import DataObject
from repro.core.kernel import Kernel
from repro.errors import ApplicationError, DataflowError


def _simple():
    return (
        Application.build("app", total_iterations=4)
        .data("d", 64)
        .kernel("k1", context_words=8, cycles=100, inputs=["d"],
                outputs=["r"], result_sizes={"r": 32})
        .kernel("k2", context_words=8, cycles=100, inputs=["r"],
                outputs=["out"], result_sizes={"out": 16})
        .final("out")
        .finish()
    )


class TestConstruction:
    def test_builder_produces_valid_app(self):
        app = _simple()
        assert app.kernel_names == ("k1", "k2")
        assert app.total_iterations == 4
        assert app.final_outputs == frozenset({"out"})

    def test_str(self):
        assert "2 kernels" in str(_simple())

    def test_empty_app_rejected(self):
        with pytest.raises(ApplicationError):
            Application.build("empty").finish()

    def test_zero_iterations_rejected(self):
        with pytest.raises(ApplicationError):
            (Application.build("x", total_iterations=0)
             .data("d", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("o")
             .finish())

    def test_kernels_are_ordered(self):
        app = _simple()
        assert app.kernel_index("k1") == 0
        assert app.kernel_index("k2") == 1


class TestValidation:
    def test_undeclared_object_rejected(self):
        with pytest.raises(ApplicationError, match="undeclared"):
            (Application.build("x", total_iterations=1)
             .kernel("k", context_words=1, cycles=1, inputs=["ghost"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("o")
             .finish())

    def test_double_production_rejected(self):
        with pytest.raises(DataflowError, match="single assignment"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .kernel("k1", context_words=1, cycles=1, inputs=["d"],
                     outputs=["r"], result_sizes={"r": 8})
             .kernel("k2", context_words=1, cycles=1, inputs=["d"],
                     outputs=["r"])
             .final("r")
             .finish())

    def test_use_before_production_rejected(self):
        with pytest.raises(DataflowError, match="before"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .data("late", 8)
             .kernel("k1", context_words=1, cycles=1, inputs=["late"],
                     outputs=["o1"], result_sizes={"o1": 8})
             .kernel("k2", context_words=1, cycles=1, inputs=["d"],
                     outputs=["late"])
             .final("o1")
             .finish())

    def test_final_must_be_produced(self):
        with pytest.raises(DataflowError, match="not produced"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("d")
             .finish())

    def test_final_must_be_declared(self):
        with pytest.raises(ApplicationError, match="not a declared"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("ghost")
             .finish())

    def test_unused_object_rejected(self):
        with pytest.raises(ApplicationError, match="neither read nor written"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .data("orphan", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("o")
             .finish())

    def test_duplicate_kernel_name_rejected(self):
        with pytest.raises(ApplicationError, match="two kernels named"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o1"], result_sizes={"o1": 8})
             .kernel("k", context_words=1, cycles=1, inputs=["o1"],
                     outputs=["o2"], result_sizes={"o2": 8})
             .final("o2")
             .finish())

    def test_kernel_object_name_collision_rejected(self):
        with pytest.raises(ApplicationError, match="both"):
            (Application.build("x", total_iterations=1)
             .data("k", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["k"],
                     outputs=["o"], result_sizes={"o": 8})
             .final("o")
             .finish())

    def test_duplicate_object_rejected(self):
        builder = Application.build("x").data("d", 8)
        with pytest.raises(ApplicationError, match="declared twice"):
            builder.data("d", 16)

    def test_invariant_result_rejected(self):
        with pytest.raises(DataflowError, match="invariant"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .data("r", 8, invariant=True)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["r"])
             .final("r")
             .finish())

    def test_result_sizes_must_match_outputs(self):
        with pytest.raises(ApplicationError, match="not in outputs"):
            (Application.build("x", total_iterations=1)
             .data("d", 8)
             .kernel("k", context_words=1, cycles=1, inputs=["d"],
                     outputs=["o"], result_sizes={"o": 8, "ghost": 8}))


class TestAccessors:
    def test_kernel_lookup(self):
        app = _simple()
        assert app.kernel("k1").cycles == 100

    def test_kernel_lookup_missing(self):
        with pytest.raises(KeyError):
            _simple().kernel("nope")

    def test_object_lookup(self):
        assert _simple().object("d").size == 64

    def test_object_lookup_missing(self):
        with pytest.raises(KeyError):
            _simple().object("nope")

    def test_producer_of_result(self):
        assert _simple().producer_of("r").name == "k1"

    def test_producer_of_external_is_none(self):
        assert _simple().producer_of("d") is None

    def test_consumers_of(self):
        consumers = _simple().consumers_of("r")
        assert [k.name for k in consumers] == ["k2"]

    def test_external_inputs(self):
        assert _simple().external_inputs() == ("d",)

    def test_external_inputs_order_is_first_touch(self):
        app = (
            Application.build("x", total_iterations=1)
            .data("b", 8)
            .data("a", 8)
            .kernel("k1", context_words=1, cycles=1, inputs=["a"],
                    outputs=["o1"], result_sizes={"o1": 8})
            .kernel("k2", context_words=1, cycles=1, inputs=["b", "o1"],
                    outputs=["o2"], result_sizes={"o2": 8})
            .final("o2")
            .finish()
        )
        assert app.external_inputs() == ("a", "b")

    def test_total_context_words(self):
        assert _simple().total_context_words() == 16

    def test_kernel_index_missing(self):
        with pytest.raises(KeyError):
            _simple().kernel_index("nope")
