"""Tests for clusters and clusterings."""

import pytest

from repro.core.cluster import Cluster, Clustering
from repro.errors import ClusteringError


class TestCluster:
    def test_name_is_one_based(self):
        cluster = Cluster(index=0, kernel_names=("k1",), fb_set=0)
        assert cluster.name == "Cl1"

    def test_contains(self):
        cluster = Cluster(index=0, kernel_names=("k1", "k2"), fb_set=0)
        assert "k1" in cluster
        assert "k9" not in cluster

    def test_size(self):
        assert Cluster(index=0, kernel_names=("a", "b"), fb_set=1).size == 2

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            Cluster(index=0, kernel_names=(), fb_set=0)

    def test_bad_set_rejected(self):
        with pytest.raises(ClusteringError):
            Cluster(index=0, kernel_names=("k",), fb_set=2)

    def test_negative_index_rejected(self):
        with pytest.raises(ClusteringError):
            Cluster(index=-1, kernel_names=("k",), fb_set=0)


class TestClustering:
    def test_per_kernel(self, sharing_app):
        clustering = Clustering.per_kernel(sharing_app)
        assert len(clustering) == 3
        assert clustering.sizes() == (1, 1, 1)

    def test_single(self, sharing_app):
        clustering = Clustering.single(sharing_app)
        assert len(clustering) == 1
        assert clustering[0].kernel_names == sharing_app.kernel_names

    def test_alternating_sets(self, sharing_app):
        clustering = Clustering.per_kernel(sharing_app)
        assert [c.fb_set for c in clustering] == [0, 1, 0]

    def test_explicit_sets(self, sharing_app):
        clustering = Clustering(
            sharing_app, [["k1"], ["k2"], ["k3"]], fb_sets=[0, 0, 1]
        )
        assert [c.fb_set for c in clustering] == [0, 0, 1]

    def test_from_sizes(self, sharing_app):
        clustering = Clustering.from_sizes(sharing_app, [2, 1])
        assert clustering.sizes() == (2, 1)
        assert clustering[0].kernel_names == ("k1", "k2")

    def test_from_sizes_wrong_total(self, sharing_app):
        with pytest.raises(ClusteringError):
            Clustering.from_sizes(sharing_app, [2, 2])

    def test_from_sizes_zero_group(self, sharing_app):
        with pytest.raises(ClusteringError):
            Clustering.from_sizes(sharing_app, [3, 0])

    def test_non_contiguous_rejected(self, sharing_app):
        with pytest.raises(ClusteringError):
            Clustering(sharing_app, [["k1", "k3"], ["k2"]])

    def test_missing_kernel_rejected(self, sharing_app):
        with pytest.raises(ClusteringError):
            Clustering(sharing_app, [["k1"], ["k2"]])

    def test_wrong_fb_set_count_rejected(self, sharing_app):
        with pytest.raises(ClusteringError):
            Clustering(sharing_app, [["k1"], ["k2"], ["k3"]], fb_sets=[0, 1])

    def test_cluster_of(self, sharing_app):
        clustering = Clustering.from_sizes(sharing_app, [2, 1])
        assert clustering.cluster_of("k2").index == 0
        assert clustering.cluster_of("k3").index == 1

    def test_cluster_of_missing(self, sharing_app):
        with pytest.raises(KeyError):
            Clustering.per_kernel(sharing_app).cluster_of("nope")

    def test_kernels_of(self, sharing_app):
        clustering = Clustering.from_sizes(sharing_app, [2, 1])
        kernels = clustering.kernels_of(clustering[0])
        assert [k.name for k in kernels] == ["k1", "k2"]

    def test_on_set(self, sharing_app):
        clustering = Clustering.per_kernel(sharing_app)
        assert [c.index for c in clustering.on_set(0)] == [0, 2]
        assert [c.index for c in clustering.on_set(1)] == [1]

    def test_same_set(self, sharing_app):
        clustering = Clustering.per_kernel(sharing_app)
        assert clustering.same_set(clustering[0], clustering[2])
        assert not clustering.same_set(clustering[0], clustering[1])

    def test_context_words_of(self, sharing_app):
        clustering = Clustering.from_sizes(sharing_app, [2, 1])
        assert clustering.context_words_of(clustering[0]) == 64

    def test_equality_and_hash(self, sharing_app):
        first = Clustering.per_kernel(sharing_app)
        second = Clustering.per_kernel(sharing_app)
        assert first == second
        assert hash(first) == hash(second)
        assert first != Clustering.single(sharing_app)

    def test_str(self, sharing_app):
        text = str(Clustering.per_kernel(sharing_app))
        assert "Cl1" in text and "Cl3" in text
