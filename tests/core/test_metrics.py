"""Tests for DS(C_c) peak occupancy and related metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import (
    cluster_data_size,
    cluster_data_size_formula,
    cluster_footprint,
    max_cluster_data_size,
    total_data_size,
)
from repro.core.reuse import find_shared_data, find_shared_results
from repro.workloads.random_gen import random_application


class TestTotalDataSize:
    def test_sums_all_objects(self, sharing_dataflow):
        expected = 256 + 128 + 192 + 192 + 128
        assert total_data_size(sharing_dataflow) == expected


class TestClusterFootprint:
    def test_footprint_is_inputs_plus_results(self, multi_kernel_app,
                                              multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        # Cluster 0: inputs a(200) + b(100); results t1+t2(300) + c_out(100).
        assert cluster_footprint(dataflow, 0) == 200 + 100 + 150 + 150 + 100

    def test_footprint_at_least_peak(self, multi_kernel_app,
                                     multi_clustering):
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        for cluster in multi_clustering:
            assert cluster_footprint(dataflow, cluster.index) >= \
                cluster_data_size(dataflow, cluster.index, 1)


class TestClusterDataSize:
    def test_single_kernel_cluster(self, sharing_dataflow):
        # Cluster 0 = k1: inputs d(256)+shared(128), output r1(192).
        assert cluster_data_size(sharing_dataflow, 0, 1) == 256 + 128 + 192

    def test_replacement_reduces_peak(self, multi_kernel_app,
                                      multi_clustering):
        """The sweep releases dead data, so the peak is below footprint."""
        dataflow = analyze_dataflow(multi_kernel_app, multi_clustering)
        peak = cluster_data_size(dataflow, 0, 1)
        footprint = cluster_footprint(dataflow, 0)
        assert peak < footprint

    def test_monotone_in_rf(self, sharing_dataflow):
        values = [
            cluster_data_size(sharing_dataflow, 0, rf) for rf in range(1, 6)
        ]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_invalid_rf_rejected(self, sharing_dataflow):
        with pytest.raises(ValueError):
            cluster_data_size(sharing_dataflow, 0, 0)

    def test_invariant_input_counted_once(self, invariant_app):
        """At RF=3 an invariant table occupies one copy where a variant
        twin of the same application would hold three."""
        variant_twin = (
            Application.build("twin", total_iterations=12)
            .data("d", 256)
            .data("table", 128)  # same sizes, NOT invariant
            .kernel("k1", context_words=32, cycles=600,
                    inputs=["d", "table"],
                    outputs=["r1"], result_sizes={"r1": 192})
            .kernel("k2", context_words=32, cycles=500, inputs=["r1"],
                    outputs=["r2"], result_sizes={"r2": 192})
            .kernel("k3", context_words=32, cycles=400,
                    inputs=["r2", "table"],
                    outputs=["out"], result_sizes={"out": 128})
            .final("out")
            .finish()
        )
        inv_df = analyze_dataflow(
            invariant_app, Clustering.per_kernel(invariant_app)
        )
        var_df = analyze_dataflow(
            variant_twin, Clustering.per_kernel(variant_twin)
        )
        # Same peak at RF=1 (one instance either way)...
        assert cluster_data_size(inv_df, 0, 1) == \
            cluster_data_size(var_df, 0, 1)
        # ...but at RF=3 the invariant version holds 2 fewer table copies.
        assert cluster_data_size(inv_df, 0, 3) == \
            cluster_data_size(var_df, 0, 3) - 2 * 128

    def test_keep_adds_residency_to_pass_through_cluster(self,
                                                         sharing_dataflow):
        """A kept item spans cluster 1 even though cluster 1 (set 1)
        never consumes it — only same-set clusters are charged."""
        keeps = find_shared_data(sharing_dataflow)
        without = cluster_data_size(sharing_dataflow, 1, 1)
        with_keep = cluster_data_size(sharing_dataflow, 1, 1, keeps)
        assert with_keep == without  # cluster 1 is on the other set

    def test_keep_charged_on_same_set(self, sharing_dataflow):
        keeps = find_shared_results(sharing_dataflow)
        # r1 kept: cluster 2 no longer loads it but it stays resident.
        base = cluster_data_size(sharing_dataflow, 2, 1)
        kept = cluster_data_size(sharing_dataflow, 2, 1, keeps)
        assert kept == base  # same words, different provenance

    def test_keep_shared_data_kept_in_consumer(self, sharing_dataflow):
        keeps = find_shared_data(sharing_dataflow)
        base = cluster_data_size(sharing_dataflow, 0, 2)
        kept = cluster_data_size(sharing_dataflow, 0, 2, keeps)
        # Non-invariant kept data occupies RF instances either way.
        assert kept == base

    def test_max_cluster_data_size(self, sharing_dataflow):
        expected = max(
            cluster_data_size(sharing_dataflow, index, 2)
            for index in range(3)
        )
        assert max_cluster_data_size(sharing_dataflow, 2) == expected

    def test_max_cluster_data_size_per_set(self, sharing_dataflow):
        set0 = max_cluster_data_size(sharing_dataflow, 1, fb_set=0)
        set1 = max_cluster_data_size(sharing_dataflow, 1, fb_set=1)
        assert set0 == max(
            cluster_data_size(sharing_dataflow, 0, 1),
            cluster_data_size(sharing_dataflow, 2, 1),
        )
        assert set1 == cluster_data_size(sharing_dataflow, 1, 1)


class TestClosedFormAgreement:
    """The paper's closed-form DS formula must match the exact sweep at
    RF=1 with no keeps."""

    def test_fixture_apps(self, sharing_app, sharing_clustering,
                          multi_kernel_app, multi_clustering):
        for app, clustering in (
            (sharing_app, sharing_clustering),
            (multi_kernel_app, multi_clustering),
        ):
            dataflow = analyze_dataflow(app, clustering)
            for cluster in clustering:
                assert cluster_data_size_formula(dataflow, cluster.index) == \
                    cluster_data_size(dataflow, cluster.index, 1), cluster

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_apps(self, seed):
        application, clustering = random_application(seed)
        dataflow = analyze_dataflow(application, clustering)
        for cluster in clustering:
            # Invariant inputs are a model extension the closed form
            # (paper, RF=1) also covers: words_for(1) == size.
            assert cluster_data_size_formula(dataflow, cluster.index) == \
                cluster_data_size(dataflow, cluster.index, 1)
