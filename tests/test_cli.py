"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "ATR-FI**" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[basic]" in out and "[cds]" in out
        assert "CDS improvement" in out

    def test_run_with_gantt(self, capsys):
        assert main(["run", "ATR-FI", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "DMA" in out

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "e1"]) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "E99"])

    def test_alloc(self, capsys):
        assert main(["alloc", "ATR-FI"]) == 0
        out = capsys.readouterr().out
        assert "FB set 0" in out
        assert "splits" in out

    def test_ablation(self, capsys):
        assert main(["ablation", "E1"]) == 0
        out = capsys.readouterr().out
        assert "keep=tf" in out and "dma=" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.slow
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CDS%" in out
        assert "ATR-SLD" in out

    @pytest.mark.slow
    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out


class TestJobsFlagValidation:
    @pytest.mark.parametrize("command", ["ablation", "sweep", "corpus"])
    def test_negative_jobs_rejected_at_the_parser(self, command, capsys):
        argv = [command, "--jobs", "-1"]
        if command != "corpus":
            argv.insert(1, "E1")
        with pytest.raises(SystemExit):
            main(argv)
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["ablation", "E1", "--jobs", "two"])
        assert "invalid jobs count" in capsys.readouterr().err

    def test_zero_and_positive_jobs_accepted_by_the_parser(self):
        args = build_parser().parse_args(["ablation", "E1", "--jobs", "0"])
        assert args.jobs == 0
        args = build_parser().parse_args(["ablation", "E1", "--jobs", "3"])
        assert args.jobs == 3


class TestRunProfile:
    def test_profile_prints_stage_timers(self, capsys):
        assert main(["run", "E1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "pipeline profile" in out
        # Scheduling runs through the batch front-end; codegen and
        # simulation remain per-scheduler pipeline stages.
        assert "batch/finalize" in out
        assert "pipeline.basic/simulate" in out

    def test_profile_leaves_collection_off_afterwards(self):
        from repro.obs.metrics import metrics_active

        assert main(["run", "E1", "--profile"]) == 0
        assert metrics_active() is False


class TestTraceCommand:
    def test_chrome_output_is_valid_trace_event_json(self, capsys):
        import json

        from repro.obs.trace import validate_chrome_trace

        assert main(["trace", "ATR-FI"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_chrome_trace(payload)
        assert payload["otherData"]["scheduler"] == "cds"
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert {"M", "X", "i"} <= phases

    def test_json_format_carries_report_and_decisions(self, capsys):
        import json

        assert main(["trace", "E1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["total_cycles"] > 0
        assert payload["decisions"]
        kinds = {decision["kind"] for decision in payload["decisions"]}
        assert "rf.result" in kinds
        assert any(kind.startswith("alloc.") for kind in kinds)

    def test_text_format_with_decisions(self, capsys):
        assert main(["trace", "E1", "--format", "text", "--decisions"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "decision trace:" in out
        assert "rf.result" in out

    def test_basic_scheduler_traces_too(self, capsys):
        assert main(["trace", "E1", "--scheduler", "basic",
                     "--format", "text"]) == 0
        assert "timeline" in capsys.readouterr().out

    def test_output_writes_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        assert main(["trace", "E1", "--output", str(target)]) == 0
        assert f"wrote {target}" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["traceEvents"]

    def test_unknown_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "E1", "--format", "xml"])


class TestCacheCli:
    def test_stats_on_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries (current): 0" in out
        assert "code fingerprint:" in out

    def test_corpus_fills_then_stats_then_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        assert main(["corpus", "--seeds", "2",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries (current): 0" not in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out

    def test_clear_refuses_foreign_directory(self, tmp_path):
        foreign = tmp_path / "not-a-cache"
        foreign.mkdir()
        (foreign / "keep.txt").write_text("data")
        with pytest.raises(SystemExit, match="refusing"):
            main(["cache", "clear", "--cache-dir", str(foreign)])
        assert (foreign / "keep.txt").exists()


class TestBenchBaselineFlags:
    def test_missing_baseline_file_rejected_before_measuring(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["bench", "--quick",
                  "--baseline", str(tmp_path / "missing.json")])

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="cannot read baseline"):
            main(["bench", "--quick", "--baseline", str(bad)])
