"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "ATR-FI**" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[basic]" in out and "[cds]" in out
        assert "CDS improvement" in out

    def test_run_with_gantt(self, capsys):
        assert main(["run", "ATR-FI", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "DMA" in out

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "e1"]) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "E99"])

    def test_alloc(self, capsys):
        assert main(["alloc", "ATR-FI"]) == 0
        out = capsys.readouterr().out
        assert "FB set 0" in out
        assert "splits" in out

    def test_ablation(self, capsys):
        assert main(["ablation", "E1"]) == 0
        out = capsys.readouterr().out
        assert "keep=tf" in out and "dma=" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.slow
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CDS%" in out
        assert "ATR-SLD" in out

    @pytest.mark.slow
    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
