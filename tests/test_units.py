"""Tests for size parsing/formatting helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    WORDS_PER_K,
    align_up,
    ceil_div,
    format_size,
    kwords,
    parse_size,
)


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(512) == 512

    def test_zero(self):
        assert parse_size(0) == 0

    def test_k_suffix_upper(self):
        assert parse_size("2K") == 2048

    def test_k_suffix_lower(self):
        assert parse_size("2k") == 2048

    def test_fractional_k_rounds_up(self):
        assert parse_size("0.3K") == 308  # ceil(0.3 * 1024)

    def test_half_k(self):
        assert parse_size("1.5K") == 1536

    def test_plain_string(self):
        assert parse_size("512") == 512

    def test_float_rounds_up(self):
        assert parse_size(10.2) == 11

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_negative_string_rejected(self):
        with pytest.raises(ValueError):
            parse_size("-2K")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("two kilowords")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_size("")

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            parse_size(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            parse_size(float("nan"))

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            parse_size(None)


class TestFormatSize:
    def test_exact_k(self):
        assert format_size(2048) == "2K"

    def test_small(self):
        assert format_size(512) == "512"

    def test_fractional(self):
        assert format_size(1536) == "1.5K"

    def test_zero(self):
        assert format_size(0) == "0"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    @given(st.integers(min_value=0, max_value=10 ** 9))
    def test_roundtrip_close(self, words):
        """parse(format(x)) stays within one K (two-decimal K display)."""
        back = parse_size(format_size(words))
        assert abs(back - words) < WORDS_PER_K

    @given(st.integers(min_value=0, max_value=1023))
    def test_roundtrip_exact_below_one_k(self, words):
        assert parse_size(format_size(words)) == words

    @given(st.integers(min_value=0, max_value=1000))
    def test_roundtrip_exact_multiples(self, ks):
        words = ks * WORDS_PER_K
        assert parse_size(format_size(words)) == words


class TestHelpers:
    def test_kwords(self):
        assert kwords(2) == 2048
        assert kwords(0.5) == 512

    def test_ceil_div_exact(self):
        assert ceil_div(10, 5) == 2

    def test_ceil_div_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_ceil_div_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_align_up(self):
        assert align_up(10, 8) == 16
        assert align_up(16, 8) == 16

    def test_align_up_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 4))
    def test_ceil_div_property(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert (result - 1) * denominator < numerator or numerator == 0
        assert result * denominator >= numerator
