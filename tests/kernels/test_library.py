"""Tests for the kernel-library registry and simulator adapters."""

import numpy as np
import pytest

from repro.core.application import Application
from repro.core.kernel import Kernel
from repro.errors import WorkloadError
from repro.kernels import default_library
from repro.kernels.library import KernelLibrary


@pytest.fixture(scope="module")
def library():
    return default_library()


def _dct_app(block=64):
    return (
        Application.build("dct-app", total_iterations=2)
        .data("x", block)
        .kernel("dct", context_words=24, cycles=300, inputs=["x"],
                outputs=["y"], result_sizes={"y": block},
                library_op="dct8x8")
        .final("y")
        .finish()
    )


class TestRegistry:
    def test_default_has_thirteen_kernels(self, library):
        assert len(library.ops()) == 13

    def test_contains(self, library):
        assert "dct8x8" in library
        assert "warp_drive" not in library

    def test_get_missing(self, library):
        with pytest.raises(KeyError, match="available"):
            library.get("warp_drive")

    def test_double_registration_rejected(self, library):
        fresh = KernelLibrary()
        fresh.register(library.get("sad16"))
        with pytest.raises(WorkloadError, match="already registered"):
            fresh.register(library.get("sad16"))


class TestImplAdapter:
    def test_impl_for_runs_real_kernel(self, library):
        app = _dct_app()
        impl = library.impl_for(app, app.kernel("dct"))
        rng = np.random.RandomState(0)
        x = rng.randint(-128, 128, size=64).astype(np.int64)
        out = impl({"x": x}, 0)
        entry = library.get("dct8x8")
        expected = entry.run_reference({"x": x.reshape(8, 8)})["y"]
        assert np.array_equal(out["y"], expected.ravel())

    def test_size_mismatch_rejected(self, library):
        app = (
            Application.build("bad", total_iterations=1)
            .data("x", 32)  # dct8x8 needs 64 words
            .kernel("dct", context_words=24, cycles=300, inputs=["x"],
                    outputs=["y"], result_sizes={"y": 64},
                    library_op="dct8x8")
            .final("y")
            .finish()
        )
        with pytest.raises(WorkloadError, match="words"):
            library.impl_for(app, app.kernel("dct"))

    def test_arity_mismatch_rejected(self, library):
        app = (
            Application.build("bad2", total_iterations=1)
            .data("x", 64).data("extra", 64)
            .kernel("dct", context_words=24, cycles=300,
                    inputs=["x", "extra"],
                    outputs=["y"], result_sizes={"y": 64},
                    library_op="dct8x8")
            .final("y")
            .finish()
        )
        with pytest.raises(WorkloadError, match="inputs"):
            library.impl_for(app, app.kernel("dct"))

    def test_no_library_op_rejected(self, library):
        app = _dct_app()
        plain = Kernel("plain", context_words=8, cycles=10,
                       inputs=("x",), outputs=("y",))
        with pytest.raises(WorkloadError, match="library_op"):
            library.impl_for(app, plain)

    def test_impls_for_skips_plain_kernels(self, library):
        app = (
            Application.build("mixed", total_iterations=1)
            .data("x", 64)
            .kernel("dct", context_words=24, cycles=300, inputs=["x"],
                    outputs=["y"], result_sizes={"y": 64},
                    library_op="dct8x8")
            .kernel("post", context_words=8, cycles=50, inputs=["y"],
                    outputs=["z"], result_sizes={"z": 16})
            .final("z")
            .finish()
        )
        impls = library.impls_for(app)
        assert set(impls) == {"dct"}


class TestFunctionalPipeline:
    def test_mpeg_functional_end_to_end(self):
        """The real-kernel MPEG pipeline runs through the full
        schedule/simulate stack and matches its reference."""
        from repro.arch.machine import MorphoSysM1
        from repro.arch.params import Architecture
        from repro.codegen.generator import generate_program
        from repro.schedule.complete import CompleteDataScheduler
        from repro.sim.engine import Simulator
        from repro.workloads.mpeg import mpeg_functional

        application, clustering, impls = mpeg_functional()
        arch = Architecture.m1("2K")
        schedule = CompleteDataScheduler(arch).schedule(
            application, clustering
        )
        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(
            generate_program(schedule), functional=True, kernel_impls=impls
        )
        assert report.functional_verified is True
        # The pipeline actually computed something: the zig-zag output
        # exists in external memory for every iteration.
        for iteration in range(application.total_iterations):
            assert machine.external_memory.get("z", iteration) is not None
