"""Tests for the DSP kernel library: program-vs-reference equivalence."""

import numpy as np
import pytest

from repro.arch.rc_array import RCArray
from repro.kernels import default_library
from repro.kernels.dsp import (
    dct8x8,
    dct_basis_matrix,
    fir,
    idct8x8,
    quant8x8,
    sad16,
    zigzag_order,
)


@pytest.fixture(scope="module")
def library():
    return default_library()


@pytest.fixture(scope="module")
def rc_array():
    return RCArray()


class TestEquivalence:
    """Every library kernel's RC-array program matches its NumPy
    reference on random operands."""

    @pytest.mark.parametrize("op", [
        "dct8x8", "idct8x8", "quant8x8", "dequant8x8", "zigzag_pack",
        "fir", "threshold_clip", "sad16", "pointwise_abs_diff",
        "vector_add", "motion_search", "haar8", "rgb_to_luma",
    ])
    def test_program_matches_reference(self, library, rc_array, op):
        entry = library.get(op)
        for seed in (1, 2, 3):
            operands = entry.representative_operands(seed=seed)
            reference = entry.run_reference(operands)
            programmed = entry.run_program(rc_array, operands)
            for role in entry.output_roles:
                assert np.array_equal(reference[role], programmed[role]), \
                    (op, role, seed)


class TestDctProperties:
    def test_basis_is_orthogonal_when_scaled(self):
        basis = dct_basis_matrix()
        gram = basis.astype(float) @ basis.astype(float).T / (1 << 14)
        assert np.allclose(gram, np.eye(8), atol=0.02)

    def test_dc_block(self):
        """A constant block concentrates energy in the DC coefficient."""
        entry = dct8x8()
        block = np.full((8, 8), 64, dtype=np.int64)
        out = entry.run_reference({"x": block})["y"]
        assert abs(out[0, 0]) > 8 * abs(out).ravel()[1:].max() or \
            abs(out).ravel()[1:].max() == 0

    def test_roundtrip_preserves_signal(self):
        """DCT -> IDCT recovers the block up to fixed-point error."""
        forward = dct8x8()
        inverse = idct8x8()
        rng = np.random.RandomState(5)
        block = rng.randint(-128, 128, size=(8, 8)).astype(np.int64)
        coefficients = forward.run_reference({"x": block})["y"]
        recovered = inverse.run_reference({"y": coefficients})["x"]
        assert np.abs(recovered - block).max() <= 4

    def test_quant_reduces_magnitude(self):
        entry = quant8x8(qshift=4)
        values = np.arange(-32, 32).reshape(8, 8) * 16
        out = entry.run_reference({"y": values})["q"]
        assert np.abs(out).max() <= 255
        assert np.abs(out).max() < np.abs(values).max()


class TestZigzag:
    def test_order_is_permutation(self):
        order = zigzag_order()
        assert sorted(order.tolist()) == list(range(64))

    def test_starts_at_dc(self):
        order = zigzag_order()
        assert order[0] == 0
        assert order[1] in (1, 8)

    def test_classic_prefix(self):
        # The canonical JPEG zig-zag prefix.
        assert zigzag_order()[:10].tolist() == [0, 1, 8, 16, 9, 2, 3, 10,
                                                17, 24]


class TestFir:
    def test_identity_filter(self):
        entry = fir(taps=(1,), length=16)
        x = np.arange(16, dtype=np.int64)
        assert np.array_equal(entry.run_reference({"x": x})["y"], x)

    def test_moving_average_power_of_two(self):
        entry = fir(taps=(1, 1, 1, 1), length=8)
        x = np.full(8, 8, dtype=np.int64)
        out = entry.run_reference({"x": x})["y"]
        # Steady state: (8+8+8+8) >> 2 == 8 after the warm-up.
        assert out[-1] == 8

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            fir(taps=())


class TestSad:
    def test_identical_blocks_zero(self):
        entry = sad16()
        block = np.arange(256).reshape(16, 16)
        out = entry.run_reference({"a": block, "b": block})["sad"]
        assert int(out) == 0

    def test_known_difference(self):
        entry = sad16()
        a = np.zeros((16, 16), dtype=np.int64)
        b = np.full((16, 16), 3, dtype=np.int64)
        assert int(entry.run_reference({"a": a, "b": b})["sad"]) == 768


class TestCycleEstimates:
    def test_all_kernels_give_positive_cycles(self, library):
        for op in library.ops():
            assert library.cycles_for(op) > 0

    def test_dct_costs_more_than_quant(self, library):
        assert library.cycles_for("dct8x8") > library.cycles_for("quant8x8")


class TestMotionSearch:
    def test_exact_match_candidate_has_zero_sad(self):
        from repro.kernels.dsp import motion_search
        import numpy as np
        entry = motion_search()
        rng = np.random.RandomState(3)
        cur = rng.randint(0, 255, size=(16, 16)).astype(np.int64)
        cands = rng.randint(0, 255, size=(4, 16, 16)).astype(np.int64)
        cands[2] = cur
        sads = entry.run_reference({"cur": cur, "cands": cands})["sads"]
        assert sads[2] == 0
        assert int(np.argmin(sads)) == 2


class TestHaar:
    def test_matrix_structure(self):
        from repro.kernels.dsp import haar_matrix
        matrix = haar_matrix(4)
        assert matrix.tolist() == [
            [1, 1, 0, 0], [0, 0, 1, 1],
            [1, -1, 0, 0], [0, 0, 1, -1],
        ]

    def test_odd_size_rejected(self):
        from repro.kernels.dsp import haar_matrix
        with pytest.raises(ValueError):
            haar_matrix(5)

    def test_constant_rows_have_zero_detail(self):
        from repro.kernels.dsp import haar8
        import numpy as np
        entry = haar8()
        x = np.full((8, 8), 10, dtype=np.int64)
        y = entry.run_reference({"x": x})["y"]
        assert np.all(y[:, 4:] == 0)   # detail band of constant signal
        assert np.all(y[:, :4] == 20)  # pairwise sums


class TestRgbToLuma:
    def test_grey_is_identity_up_to_rounding(self):
        from repro.kernels.dsp import rgb_to_luma
        import numpy as np
        entry = rgb_to_luma(pixels=8)
        grey = np.full(8, 100, dtype=np.int64)
        y = entry.run_reference({"r": grey, "g": grey, "b": grey})["y"]
        # 66+129+25 = 220 -> y = (220*100 + 128) >> 8 = 86 (BT.601 range)
        assert np.all(y == (220 * 100 + 128) >> 8)

    def test_green_dominates(self):
        from repro.kernels.dsp import rgb_to_luma
        import numpy as np
        entry = rgb_to_luma(pixels=4)
        zeros = np.zeros(4, dtype=np.int64)
        full = np.full(4, 255, dtype=np.int64)
        y_g = entry.run_reference({"r": zeros, "g": full, "b": zeros})["y"]
        y_r = entry.run_reference({"r": full, "g": zeros, "b": zeros})["y"]
        y_b = entry.run_reference({"r": zeros, "g": zeros, "b": full})["y"]
        assert y_g[0] > y_r[0] > y_b[0]
