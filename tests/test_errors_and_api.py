"""Tests for the exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.DataflowError, errors.ApplicationError)
        assert issubclass(errors.CapacityError, errors.ArchitectureError)
        assert issubclass(errors.FragmentationError, errors.AllocationError)
        assert issubclass(errors.ProgramVerificationError, errors.CodegenError)

    def test_infeasible_carries_context(self):
        exc = errors.InfeasibleScheduleError(
            "nope", cluster="Cl1", required=100, available=50
        )
        assert exc.cluster == "Cl1"
        assert exc.required == 100
        assert exc.available == 50

    def test_catch_all(self):
        """One except clause covers every library failure."""
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_simulate_default_architecture(self, sharing_app,
                                           sharing_clustering):
        schedule = repro.DataScheduler(
            repro.Architecture.m1("2K")
        ).schedule(sharing_app, sharing_clustering)
        report = repro.simulate(schedule)  # architecture inferred
        assert report.total_cycles > 0

    def test_docstring_example_runs(self):
        """The quickstart in repro.__doc__ must stay executable."""
        app = (
            repro.Application.build("demo", total_iterations=32)
            .data("d", "0.5K")
            .kernel("k1", context_words=32, cycles=600, inputs=["d"],
                    outputs=["r"], result_sizes={"r": 256})
            .kernel("k2", context_words=32, cycles=500, inputs=["r"],
                    outputs=["out"], result_sizes={"out": 256})
            .final("out")
            .finish()
        )
        arch = repro.Architecture.m1("2K")
        schedule = repro.CompleteDataScheduler(arch).schedule(
            app, repro.Clustering.per_kernel(app))
        report = repro.simulate(schedule, arch)
        assert report.total_cycles > 0


class TestMachine:
    def test_machine_reset(self):
        machine = repro.MorphoSysM1.m1("1K", functional=True)
        machine.external_memory.put("x", 0, size=8)
        machine.dma.request(
            __import__("repro.arch.dma", fromlist=["TransferKind"])
            .TransferKind.DATA_LOAD, 8, 0, "x",
        )
        machine.reset()
        assert not machine.external_memory.exists("x", 0)
        assert machine.dma.busy_until == 0

    def test_str(self):
        assert "functional" in str(repro.MorphoSysM1.m1(functional=True))
        assert "timing" in str(repro.MorphoSysM1.m1())
