"""Shared builders for the hazard-analyzer tests."""

import pytest

from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.lint.runner import resolve_target
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler

SCHEDULER_CLASSES = {
    "basic": BasicScheduler,
    "ds": DataScheduler,
    "cds": CompleteDataScheduler,
}


def build_schedule(target_id, scheduler="cds"):
    """Schedule one bundled lint target with one scheduler."""
    entry = resolve_target(target_id)
    application, clustering = entry.build()
    architecture = Architecture.m1(entry.fb)
    schedule = SCHEDULER_CLASSES[scheduler](architecture).schedule(
        application, clustering
    )
    return schedule, architecture


def build_program(target_id, scheduler="cds"):
    schedule, architecture = build_schedule(target_id, scheduler)
    return generate_program(schedule), architecture


@pytest.fixture(scope="module")
def e1_cds_program():
    return build_program("E1", "cds")[0]


@pytest.fixture(scope="module")
def e1_ds_program():
    return build_program("E1", "ds")[0]
