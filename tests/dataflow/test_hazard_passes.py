"""Each hazard pass: clean on healthy programs, sharp on planted bugs."""

import dataclasses

import pytest

from repro.codegen.ops import LoadData
from repro.dataflow.analyzer import analyze_program, analyze_schedule
from repro.dataflow.passes import HAZARD_RULES
from repro.schedule.context_scheduler import DmaPolicy

from tests.dataflow.conftest import build_program, build_schedule


def _codes(collector):
    return sorted({diagnostic.code for diagnostic in collector.diagnostics})


# -- clean paths ----------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["basic", "ds", "cds"])
def test_sound_policies_are_clean(scheduler):
    schedule, _ = build_schedule("E1", scheduler)
    for policy in (DmaPolicy.CONTEXTS_FIRST, DmaPolicy.STORES_FIRST):
        _, collector = analyze_schedule(schedule, policy=policy)
        assert not collector.diagnostics, "\n".join(
            str(d) for d in collector.diagnostics
        )
        assert set(HAZARD_RULES) <= set(collector.rules_checked)


def test_serial_schedule_is_clean_under_every_policy():
    schedule, _ = build_schedule("E1", "basic")
    for policy in DmaPolicy:
        _, collector = analyze_schedule(schedule, policy=policy)
        assert not collector.diagnostics


# -- HAZ001: races --------------------------------------------------------


def test_loads_first_policy_races(e1_ds_program):
    collector = analyze_program(
        e1_ds_program, policy=DmaPolicy.LOADS_FIRST
    )
    races = [d for d in collector.diagnostics if d.code == "HAZ001"]
    assert races
    assert all(d.severity.value == "error" for d in races)
    assert all(d.cost_words > 0 for d in races)
    assert any("LOADS_FIRST" in d.message for d in races)


def test_adaptive_policy_is_not_placement_sound(e1_ds_program):
    """ADAPTIVE reorders without consulting placement: HAZ001 catches
    the overlap the capacity argument alone cannot exclude."""
    collector = analyze_program(e1_ds_program, policy=DmaPolicy.ADAPTIVE)
    assert "HAZ001" in _codes(collector)


# -- HAZ002: live-range interference --------------------------------------


def test_overlapping_placements_interfere(e1_cds_program):
    """A load injected over words the allocator gave to another live
    value must be reported as interference."""
    program = e1_cds_program
    keep = next(
        keep for keep in program.schedule.keeps
        if getattr(keep, "invariant", False)
    )
    for index, ops in enumerate(program.visits):
        visit = ops.visit
        if visit.fb_set == keep.fb_set and visit.cluster_index == max(
            keep.span
        ):
            extra = LoadData(keep.name, visit.iterations[0], 8, visit.fb_set)
            mutated_ops = dataclasses.replace(
                ops, data_loads=ops.data_loads + (extra,)
            )
            visits = (
                program.visits[:index] + (mutated_ops,)
                + program.visits[index + 1:]
            )
            break
    mutated = dataclasses.replace(program, visits=visits)
    collector = analyze_program(mutated)
    assert "HAZ002" in _codes(collector)


# -- DFA001: dead transfers -----------------------------------------------


def test_duplicated_load_is_dead_traffic(e1_cds_program):
    program = e1_cds_program
    for index, ops in enumerate(program.visits):
        if ops.data_loads:
            dup = ops.data_loads[0]
            mutated_ops = dataclasses.replace(
                ops, data_loads=(dup,) + ops.data_loads
            )
            visits = (
                program.visits[:index] + (mutated_ops,)
                + program.visits[index + 1:]
            )
            break
    mutated = dataclasses.replace(program, visits=visits)
    collector = analyze_program(mutated)
    dead = [d for d in collector.diagnostics if d.code == "DFA001"]
    assert len(dead) == 1
    assert dead[0].cost_words == dup.words
    assert dead[0].severity.value == "warning"
    assert dup.name in dead[0].message


# -- DFA002: retention liveness -------------------------------------------


def test_unread_retention_is_reported(e1_cds_program):
    """Dropping the consumer cluster's compute leaves every keep's
    survivors unread: the claimed traffic saving is never realised."""
    program = e1_cds_program
    schedule = program.schedule
    assert schedule.keeps
    visits = tuple(
        dataclasses.replace(ops, compute=())
        if ops.visit.cluster_index == 2
        else ops
        for ops in program.visits
    )
    mutated = dataclasses.replace(program, visits=visits)
    collector = analyze_program(mutated)
    retention = [d for d in collector.diagnostics if d.code == "DFA002"]
    assert retention
    assert all(d.cost_words > 0 for d in retention)
    flagged = {d.details["object"] for d in retention}
    kept_in_cluster2 = {
        keep.name for keep in schedule.keeps if max(keep.span) == 2
    }
    assert flagged == kept_in_cluster2


# -- HAZ003: capacity over time -------------------------------------------


def test_cm_block_over_capacity(e1_cds_program):
    tiny = dataclasses.replace(
        e1_cds_program.schedule, context_block_words=1
    )
    program = dataclasses.replace(e1_cds_program, schedule=tiny)
    collector = analyze_program(program)
    over = [d for d in collector.diagnostics if d.code == "HAZ003"]
    assert over
    assert all("CM block" in d.message for d in over)


def test_loads_first_overlap_window_blows_the_budget(e1_ds_program):
    collector = analyze_program(
        e1_ds_program, policy=DmaPolicy.LOADS_FIRST
    )
    windows = [
        d for d in collector.diagnostics
        if d.code == "HAZ003" and "overlap window" in d.message
    ]
    assert windows
    assert all(d.cost_words > 0 for d in windows)
