"""Analyzer edge cases: degenerate programs, boundary placements,
adaptive-policy happens-before edges."""

import dataclasses

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.dataflow.analyzer import analyze_program, build_ir
from repro.dataflow.hazards import HappensBefore
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy

from tests.dataflow.conftest import build_program


# -- degenerate programs --------------------------------------------------


def test_empty_program_analyzes_clean(e1_cds_program):
    empty = dataclasses.replace(e1_cds_program, visits=())
    ir = build_ir(empty)
    assert ir.nodes == []
    assert ir.values == []
    hb = HappensBefore.build(ir)
    assert hb.channel_pos == {}
    collector = analyze_program(empty)
    assert not collector.diagnostics
    assert collector.rules_checked  # the passes did run


def test_single_visit_program():
    """One cluster, one round: the whole application is one visit."""
    application = (
        Application.build("single", total_iterations=2)
        .data("d", 64)
        .kernel("k", context_words=16, cycles=100, inputs=["d"],
                outputs=["out"], result_sizes={"out": 32})
        .final("out")
        .finish()
    )
    clustering = Clustering.per_kernel(application)
    schedule = CompleteDataScheduler(Architecture.m1("8K")).schedule(
        application, clustering
    )
    from repro.codegen.generator import generate_program

    program = generate_program(schedule)
    ir = build_ir(program)
    assert len(ir.visit_nodes) == len(program.visits)
    for policy in DmaPolicy:
        hb = HappensBefore.build(ir, policy)
        assert not hb.loads_first_windows  # nothing to overlap with
        collector = analyze_program(program, policy=policy)
        assert not collector.diagnostics


def test_compute_only_visits(e1_cds_program):
    """Visits stripped of all transfers still lower and analyze."""
    visits = tuple(
        dataclasses.replace(
            ops, context_loads=(), data_loads=(), stores=()
        )
        for ops in e1_cds_program.visits
    )
    bare = dataclasses.replace(e1_cds_program, visits=visits)
    ir = build_ir(bare)
    assert all(node.kind == "compute" for node in ir.nodes)
    hb = HappensBefore.build(ir)
    assert hb.channel_pos == {}
    analyze_program(bare)  # must not crash


# -- placement boundaries -------------------------------------------------


def test_per_cluster_placement_records_are_distinguished():
    """An object consumed by several clusters of the same set has one
    allocation record per consuming cluster; each visit's IR accesses
    must use its own cluster's extents, not another's."""
    program, _ = build_program("ATR-FI", "ds")
    ir = build_ir(program)
    assert ir.has_placement
    by_object = {}
    for value in ir.values:
        if value.extents:
            by_object.setdefault(
                (value.name, value.instance, value.fb_set), set()
            ).add(value.extents)
    multi = [key for key, extents in by_object.items() if len(extents) > 1]
    assert multi, "expected at least one object placed per-cluster"
    collector = analyze_program(program)
    assert not collector.diagnostics  # and none of it interferes


def test_split_extents_cover_value_words():
    """Fragmented placements (multi-extent records) stay consistent."""
    for target in ("ATR-FI", "ATR-SLD"):
        program, _ = build_program(target, "cds")
        ir = build_ir(program)
        for value in ir.values:
            if value.extents:
                covered = sum(extent.size for extent in value.extents)
                assert covered == value.words


# -- adaptive policy ------------------------------------------------------


def test_adaptive_windows_are_a_subset_of_loads_first(e1_ds_program):
    """ADAPTIVE reorders only the windows its capacity proof covers, so
    its loads-before-stores windows are a subset of LOADS_FIRST's."""
    ir = build_ir(e1_ds_program)
    loads_first = HappensBefore.build(ir, DmaPolicy.LOADS_FIRST)
    adaptive = HappensBefore.build(ir, DmaPolicy.ADAPTIVE)
    assert set(adaptive.loads_first_windows) <= set(
        loads_first.loads_first_windows
    )


def test_adaptive_edges_differ_from_contexts_first(e1_ds_program):
    """Where ADAPTIVE hoists loads, the channel order really changes."""
    ir = build_ir(e1_ds_program)
    default = HappensBefore.build(ir, DmaPolicy.CONTEXTS_FIRST)
    adaptive = HappensBefore.build(ir, DmaPolicy.ADAPTIVE)
    assert default.channel_pos.keys() == adaptive.channel_pos.keys()
    if adaptive.loads_first_windows:
        assert default.channel_pos != adaptive.channel_pos


def test_sound_policies_share_engine_issue_order(e1_ds_program):
    """CONTEXTS_FIRST and STORES_FIRST differ only inside windows the
    engine serialises anyway: same gates, same windows flagged (none)."""
    ir = build_ir(e1_ds_program)
    contexts = HappensBefore.build(ir, DmaPolicy.CONTEXTS_FIRST)
    stores = HappensBefore.build(ir, DmaPolicy.STORES_FIRST)
    assert contexts.loads_first_windows == ()
    assert stores.loads_first_windows == ()
    assert contexts.channel_pos == stores.channel_pos
