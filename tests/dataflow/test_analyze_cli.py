"""The ``repro analyze`` command."""

import json

import pytest

from repro.cli import main


def test_analyze_single_experiment_text(capsys):
    assert main(["analyze", "E1"]) == 0
    out = capsys.readouterr().out
    assert "1 clean, 0 with findings, 0 skipped" in out


def test_analyze_json_report(capsys):
    assert main(["analyze", "E1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"] == {
        "targets": 1, "errors": 0, "hazard_findings": 0,
    }
    report = payload["reports"][0]
    assert report["target"] == "E1"
    assert report["scheduler"] == "cds"
    assert report["policy"] == "contexts_first"
    assert report["clean"] is True
    assert "by_severity" in report["summary"]


def test_analyze_unsound_policy_fails(capsys):
    assert main(["analyze", "E1", "--scheduler", "ds",
                 "--policy", "loads_first"]) == 1
    out = capsys.readouterr().out
    assert "HAZ001" in out
    assert "1 with findings" in out


def test_analyze_all_schedulers_sound_policies(capsys):
    assert main(["analyze", "E2", "--scheduler", "all",
                 "--policy", "sound"]) == 0
    out = capsys.readouterr().out
    assert "6 clean, 0 with findings, 0 skipped" in out


def test_analyze_corpus(capsys):
    assert main(["analyze", "corpus", "--scheduler", "cds"]) == 0
    out = capsys.readouterr().out
    assert "skipped" in out  # summary line renders


def test_analyze_writes_report_file(tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main(["analyze", "E1", "--output", str(report)]) == 0
    payload = json.loads(report.read_text())
    assert payload["totals"]["errors"] == 0
    out = capsys.readouterr().out
    assert f"wrote {report}" in out


def test_analyze_verbose_lists_rules(capsys):
    assert main(["analyze", "E1", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "HAZ001" in out  # rules-checked listing includes the family


def test_analyze_unknown_target():
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="unknown lint target"):
        main(["analyze", "NOPE"])
