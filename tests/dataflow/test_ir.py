"""Lowering programs into the def-use IR."""

import dataclasses

from repro.alloc.allocator import FrameBufferAllocator
from repro.dataflow.ir import (
    COMPUTE,
    CONTEXT_LOAD,
    DATA_LOAD,
    STORE,
    lower_program,
)

from tests.dataflow.conftest import build_program

_KINDS = {CONTEXT_LOAD, DATA_LOAD, COMPUTE, STORE}


def _lower(program):
    allocations = FrameBufferAllocator(program.schedule).allocate()
    return lower_program(program, allocations=allocations)


def test_node_ids_are_program_order_positions(e1_cds_program):
    ir = _lower(e1_cds_program)
    assert [node.node_id for node in ir.nodes] == list(range(len(ir.nodes)))
    assert all(node.kind in _KINDS for node in ir.nodes)
    # Visit indices are non-decreasing along the node order.
    indices = [node.visit_index for node in ir.nodes]
    assert indices == sorted(indices)


def test_node_counts_match_program_ops(e1_cds_program):
    ir = _lower(e1_cds_program)
    expected = sum(
        len(ops.context_loads) + len(ops.data_loads) + len(ops.compute)
        + len(ops.stores)
        for ops in e1_cds_program.visits
    )
    assert len(ir.nodes) == expected
    assert len(ir.visit_nodes) == len(e1_cds_program.visits)


def test_lifetimes_are_well_formed(e1_cds_program):
    ir = _lower(e1_cds_program)
    assert ir.values
    for value in ir.values:
        assert value.release_pos > value.def_pos
        assert value.end_visit >= value.def_visit
        for use in value.uses:
            assert ir.nodes[use].kind == COMPUTE
            assert use >= value.def_node
        for store in value.store_nodes:
            assert ir.nodes[store].kind == STORE


def test_healthy_program_has_no_dead_values(e1_cds_program):
    ir = _lower(e1_cds_program)
    dead = [
        value for value in ir.values
        if value.def_kind == DATA_LOAD and value.dead
    ]
    assert dead == []


def test_placement_gives_extents(e1_cds_program):
    ir = _lower(e1_cds_program)
    assert ir.has_placement
    placed = [value for value in ir.values if value.extents]
    assert placed
    for value in placed:
        assert sum(extent.size for extent in value.extents) == value.words


def test_lowering_without_allocations_degrades(e1_cds_program):
    ir = lower_program(e1_cds_program)
    assert not ir.has_placement
    assert all(not value.extents for value in ir.values)
    # The def-use structure is placement-independent.
    full = _lower(e1_cds_program)
    assert len(ir.values) == len(full.values)
    assert [value.uses for value in ir.values] == [
        value.uses for value in full.values
    ]


def test_kept_values_survive_drains(e1_cds_program):
    schedule = e1_cds_program.schedule
    assert schedule.keeps  # E1's CDS schedule retains shared data
    ir = _lower(e1_cds_program)
    kept_names = {keep.name for keep in schedule.keeps}
    survivors = {
        value.name for value in ir.values if value.survived_drain
    }
    assert survivors and survivors <= kept_names


def test_redundant_load_closes_previous_value(e1_cds_program):
    program = e1_cds_program
    for index, ops in enumerate(program.visits):
        if ops.data_loads:
            dup = ops.data_loads[0]
            mutated_ops = dataclasses.replace(
                ops, data_loads=(dup,) + ops.data_loads
            )
            visits = (
                program.visits[:index] + (mutated_ops,)
                + program.visits[index + 1:]
            )
            break
    mutated = dataclasses.replace(program, visits=visits)
    ir = lower_program(mutated)
    clobbered = [
        value for value in ir.values
        if (value.name, value.instance) == (dup.name, dup.iteration)
        and value.def_visit == ops.visit.index
    ]
    assert len(clobbered) == 2
    first, second = sorted(clobbered, key=lambda value: value.def_node)
    assert first.dead  # never read before being overwritten
    assert first.release_pos <= second.def_pos + 1


def test_basic_scheduler_program_lowers_too():
    program, _ = build_program("E1", "basic")
    ir = _lower(program)
    assert ir.values
    assert not program.schedule.overlap_transfers
