"""Static dead-transfer analysis versus the functional simulator.

The property: for any program the functional simulator can run,

* the words the simulator observes entering the frame buffer equal the
  program's static load total, and
* the words the simulator observes arriving but never being read by any
  kernel (transferred minus consumed) equal the summed ``DFA001`` cost
  the static analyzer reports.

So ``DFA001`` is not a heuristic — it is the exact static counterpart
of a dynamic quantity.
"""

import dataclasses

import pytest

from repro.arch.machine import MorphoSysM1
from repro.dataflow.analyzer import analyze_program
from repro.fuzz.case import FuzzCase
from repro.sim.engine import Simulator

from tests.dataflow.conftest import build_program

CORPUS = "tests/corpus/regression-rf-gallop-seed7.json"


def _static_dead_words(program):
    collector = analyze_program(program)
    return sum(
        diagnostic.cost_words
        for diagnostic in collector.diagnostics
        if diagnostic.code == "DFA001"
    )


def _dynamic_dead_words(program, architecture, verify=True):
    simulator = Simulator(MorphoSysM1(architecture), verify=verify)
    report = simulator.run(program, functional=True)
    assert report.functional_verified or not verify
    return (
        simulator.functional_loaded_words,
        simulator.functional_dead_words,
    )


@pytest.mark.parametrize("target", ["E1", "E2", "E3"])
@pytest.mark.parametrize("scheduler", ["basic", "ds", "cds"])
def test_paper_experiments_transfer_exactly_what_is_consumed(
    target, scheduler
):
    program, architecture = build_program(target, scheduler)
    loaded, dead = _dynamic_dead_words(program, architecture)
    assert loaded == program.total_load_words
    assert dead == 0
    assert _static_dead_words(program) == 0


def test_corpus_reproducer_agrees():
    case = FuzzCase.load(CORPUS)
    application, clustering = case.build()
    architecture = case.architecture()
    from repro.schedule.complete import CompleteDataScheduler

    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )
    from repro.codegen.generator import generate_program

    program = generate_program(schedule)
    loaded, dead = _dynamic_dead_words(program, architecture)
    assert loaded == program.total_load_words
    assert dead == _static_dead_words(program)


def test_injected_dead_load_counted_by_both_sides():
    program, architecture = build_program("E1", "cds")
    for index, ops in enumerate(program.visits):
        if ops.data_loads:
            dup = ops.data_loads[0]
            mutated_ops = dataclasses.replace(
                ops, data_loads=(dup,) + ops.data_loads
            )
            visits = (
                program.visits[:index] + (mutated_ops,)
                + program.visits[index + 1:]
            )
            break
    mutated = dataclasses.replace(program, visits=visits)
    static = _static_dead_words(mutated)
    assert static == dup.words
    loaded, dead = _dynamic_dead_words(
        mutated, architecture, verify=False
    )
    assert dead == static
    assert loaded == mutated.total_load_words


def test_tracking_resets_between_runs():
    program, architecture = build_program("E2", "cds")
    simulator = Simulator(MorphoSysM1(architecture))
    assert simulator.functional_loaded_words is None
    assert simulator.functional_dead_words is None
    simulator.run(program, functional=True)
    first = simulator.functional_loaded_words
    assert first == program.total_load_words
    simulator.machine.reset()
    simulator.run(program, functional=True)
    assert simulator.functional_loaded_words == first
    assert simulator.functional_dead_words == 0
