"""The happens-before graph versus a brute-force transitive closure.

The O(1) queries in :class:`HappensBefore` are prefix-maxima shortcuts
over a small set of direct ordering facts the engine guarantees:

* the single DMA channel serialises transfers in issue order;
* the single RC array serialises kernel runs in visit order;
* a visit's compute starts only after its preparation transfers land;
* a transfer starts only after its gating visit's compute ends.

The differential test materialises exactly those edges, takes the
transitive closure, and checks the O(1) answers agree on *every* pair
of nodes, for every DMA policy.
"""

import pytest

from repro.dataflow.analyzer import build_ir
from repro.dataflow.hazards import HappensBefore
from repro.schedule.context_scheduler import DmaPolicy

from tests.dataflow.conftest import build_program


def _closure(hb, node_count):
    """Reachability over the direct ordering facts (see module doc)."""
    adjacency = [set() for _ in range(node_count)]
    by_pos = sorted(hb.channel_pos, key=lambda node: hb.channel_pos[node])
    for first, second in zip(by_pos, by_pos[1:]):
        adjacency[first].add(second)
    by_seq = sorted(hb.compute_seq, key=lambda node: hb.compute_seq[node])
    for first, second in zip(by_seq, by_seq[1:]):
        adjacency[first].add(second)
    first_compute = {}
    last_compute = {}
    for node in by_seq:
        first_compute.setdefault(hb.compute_visit[node], node)
        last_compute[hb.compute_visit[node]] = node
    node_at = {hb.channel_pos[node]: node for node in hb.channel_pos}
    for visit, pos in enumerate(hb.lastprep):
        if pos >= 0 and visit in first_compute:
            adjacency[node_at[pos]].add(first_compute[visit])
    for pos, gate in enumerate(hb.rel):
        if gate >= 0 and gate in last_compute:
            adjacency[last_compute[gate]].add(node_at[pos])

    # Kahn topological order, then reach sets in reverse topo order.
    indegree = [0] * node_count
    for node in range(node_count):
        for succ in adjacency[node]:
            indegree[succ] += 1
    frontier = [node for node in range(node_count) if indegree[node] == 0]
    topo = []
    while frontier:
        node = frontier.pop()
        topo.append(node)
        for succ in adjacency[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                frontier.append(succ)
    assert len(topo) == node_count  # the graph is a DAG
    reach = [set() for _ in range(node_count)]
    for node in reversed(topo):
        for succ in adjacency[node]:
            reach[node].add(succ)
            reach[node] |= reach[succ]
    return reach


@pytest.mark.parametrize("scheduler", ["basic", "ds", "cds"])
@pytest.mark.parametrize("policy", list(DmaPolicy))
def test_queries_match_transitive_closure(scheduler, policy):
    program, _ = build_program("E2", scheduler)
    ir = build_ir(program)
    hb = HappensBefore.build(ir, policy)
    reach = _closure(hb, len(ir.nodes))
    nodes = sorted(set(hb.channel_pos) | set(hb.compute_seq))
    mismatches = []
    for a in nodes:
        for b in nodes:
            if a == b:
                continue
            if hb.happens_before(a, b) != (b in reach[a]):
                mismatches.append((a, b))
    assert not mismatches, (
        f"{len(mismatches)} query/closure disagreements, first: "
        f"{ir.describe(mismatches[0][0])} -> {ir.describe(mismatches[0][1])}"
    )


def test_relation_is_a_strict_partial_order(e1_ds_program):
    ir = build_ir(e1_ds_program)
    hb = HappensBefore.build(ir)
    nodes = sorted(set(hb.channel_pos) | set(hb.compute_seq))
    for a in nodes[:: max(1, len(nodes) // 60)]:
        assert not hb.happens_before(a, a)
        for b in nodes[:: max(1, len(nodes) // 60)]:
            if a == b:
                continue
            assert not (
                hb.happens_before(a, b) and hb.happens_before(b, a)
            )


def test_serial_schedule_orders_everything(e1_ds_program):
    program, _ = build_program("E1", "basic")
    ir = build_ir(program)
    hb = HappensBefore.build(ir)
    assert hb.serial
    # In serial mode every pair of nodes is ordered: no overlap at all.
    nodes = sorted(set(hb.channel_pos) | set(hb.compute_seq))
    step = max(1, len(nodes) // 40)
    for a in nodes[::step]:
        for b in nodes[::step]:
            if a != b:
                assert hb.ordered(a, b)


def test_pipelined_schedule_leaves_windows_unordered(e1_ds_program):
    ir = build_ir(e1_ds_program)
    hb = HappensBefore.build(ir)
    assert not hb.serial
    nodes = sorted(set(hb.channel_pos) | set(hb.compute_seq))
    unordered = sum(
        1
        for a in nodes
        for b in nodes
        if a < b and not hb.ordered(a, b)
    )
    assert unordered > 0  # prefetch genuinely overlaps compute


def test_loads_first_reorders_the_channel(e1_ds_program):
    ir = build_ir(e1_ds_program)
    default = HappensBefore.build(ir, DmaPolicy.CONTEXTS_FIRST)
    loads_first = HappensBefore.build(ir, DmaPolicy.LOADS_FIRST)
    assert loads_first.loads_first_windows
    assert not default.loads_first_windows
    assert default.channel_pos != loads_first.channel_pos


def test_channel_positions_cover_all_transfers(e1_cds_program):
    ir = build_ir(e1_cds_program)
    hb = HappensBefore.build(ir)
    transfer_nodes = {
        node.node_id
        for node in ir.nodes
        if node.kind != "compute"
    }
    assert set(hb.channel_pos) == transfer_nodes
    positions = sorted(hb.channel_pos.values())
    assert positions == list(range(len(positions)))
