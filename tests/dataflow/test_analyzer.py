"""The analyzer driver: lint wiring, strict mode, batch runner, oracle."""

import dataclasses

import pytest

from repro.arch.params import Architecture
from repro.dataflow.analyzer import (
    analyze_program,
    analyze_schedule,
    hazard_errors,
    parse_policy,
)
from repro.dataflow.runner import analyze_targets, render_analysis_json, \
    render_analysis_text
from repro.errors import LintError
from repro.lint import RULES
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy

from tests.dataflow.conftest import build_schedule
from tests.lint.util import mini_app


def test_parse_policy_accepts_all_names():
    for policy in DmaPolicy:
        assert parse_policy(policy.name) is policy
        assert parse_policy(policy.name.lower()) is policy
    with pytest.raises(ValueError, match="unknown DMA policy"):
        parse_policy("bogus")


def test_hazard_rules_are_registered():
    for code in ("HAZ001", "HAZ002", "HAZ003", "DFA001", "DFA002"):
        assert code in RULES
        assert RULES[code].layer == "program"
        assert RULES[code].paper_ref


def test_analyze_schedule_returns_program_and_collector():
    schedule, _ = build_schedule("E2", "cds")
    program, collector = analyze_schedule(schedule)
    assert program.schedule is schedule
    assert not collector.diagnostics
    assert hazard_errors(collector) == ()


def test_hazard_errors_filters_to_error_haz(e1_ds_program):
    collector = analyze_program(
        e1_ds_program, policy=DmaPolicy.LOADS_FIRST
    )
    findings = hazard_errors(collector)
    assert findings
    assert all(d.code.startswith("HAZ") for d in findings)
    assert all(d.severity.value == "error" for d in findings)


# -- ScheduleOptions(strict_hazards) --------------------------------------


def test_strict_hazards_passes_on_healthy_schedule():
    application, clustering = mini_app()
    scheduler = CompleteDataScheduler(
        Architecture.m1("2K"), ScheduleOptions(strict_hazards=True)
    )
    schedule = scheduler.schedule(application, clustering)
    assert schedule.rf >= 1


def test_strict_hazards_raises_on_hazardous_schedule():
    class Sabotaged(CompleteDataScheduler):
        def _schedule(self, dataflow):
            schedule = super()._schedule(dataflow)
            # A 1-word context block cannot hold any refill: HAZ003.
            return dataclasses.replace(schedule, context_block_words=1)

    application, clustering = mini_app()
    scheduler = Sabotaged(
        Architecture.m1("2K"), ScheduleOptions(strict_hazards=True)
    )
    with pytest.raises(LintError, match="strict hazards") as excinfo:
        scheduler.schedule(application, clustering)
    assert any(d.code == "HAZ003" for d in excinfo.value.diagnostics)


def test_strict_hazards_off_by_default():
    class Sabotaged(CompleteDataScheduler):
        def _schedule(self, dataflow):
            schedule = super()._schedule(dataflow)
            return dataclasses.replace(schedule, context_block_words=1)

    application, clustering = mini_app()
    schedule = Sabotaged(Architecture.m1("2K")).schedule(
        application, clustering
    )
    assert schedule is not None


# -- the batch runner ------------------------------------------------------


def test_analyze_targets_single_experiment():
    results = analyze_targets(
        "E1", schedulers=("ds",),
        policies=(DmaPolicy.CONTEXTS_FIRST, DmaPolicy.LOADS_FIRST),
    )
    assert len(results) == 2
    by_policy = {result.policy: result for result in results}
    assert not by_policy[DmaPolicy.CONTEXTS_FIRST].has_errors
    assert by_policy[DmaPolicy.LOADS_FIRST].has_errors


def test_analyze_targets_corpus_handles_infeasible(tmp_path):
    results = analyze_targets(
        "corpus", schedulers=("basic", "cds"),
        policies=(DmaPolicy.CONTEXTS_FIRST,),
        corpus_dir="tests/corpus",
    )
    assert results
    # The diagnostics-regression reproducer is basic-infeasible by
    # design; it must surface as a skip, not a crash.
    skipped = [result for result in results if result.skipped]
    assert all("infeasible" in result.reason for result in skipped)
    analyzed = [result for result in results if not result.skipped]
    assert analyzed
    assert not any(result.has_errors for result in analyzed)


def test_render_analysis_text_and_json():
    results = analyze_targets(
        "E1", schedulers=("ds",),
        policies=(DmaPolicy.CONTEXTS_FIRST, DmaPolicy.LOADS_FIRST),
    )
    text = render_analysis_text(results)
    assert "1 clean, 1 with findings, 0 skipped" in text
    payload = render_analysis_json(results)
    assert payload["totals"]["targets"] == 2
    assert payload["totals"]["errors"] > 0
    assert payload["totals"]["hazard_findings"] > 0
    clean = [r for r in payload["reports"] if r["policy"] == "contexts_first"]
    assert clean[0]["clean"] is True


# -- the fuzz oracle -------------------------------------------------------


def test_hazards_oracle_clean_on_generated_case():
    from repro.fuzz.generator import generate_case
    from repro.fuzz.oracles import run_oracles

    case = generate_case("baseline", 3)
    assert run_oracles(case, oracles=("hazards",)) == []


def test_hazards_oracle_flags_hazardous_program(monkeypatch):
    """Shrink the CM block behind the oracle's back: the hazards oracle
    must surface the resulting HAZ003 findings as failures."""
    from repro.dataflow import analyzer as analyzer_module
    from repro.fuzz.generator import generate_case
    from repro.fuzz.oracles import run_oracles

    real_analyze = analyzer_module.analyze_program

    def sabotaged_analyze(program, **kwargs):
        tiny = dataclasses.replace(
            program.schedule, context_block_words=1
        )
        return real_analyze(
            dataclasses.replace(program, schedule=tiny), **kwargs
        )

    monkeypatch.setattr(
        analyzer_module, "analyze_program", sabotaged_analyze
    )
    case = generate_case("baseline", 3)
    failures = run_oracles(case, oracles=("hazards",))
    assert failures
    assert all(failure.oracle == "hazards" for failure in failures)
    assert any("HAZ" in failure.message for failure in failures)
