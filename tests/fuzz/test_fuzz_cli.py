"""The ``repro fuzz`` command."""

from repro.cli import main


def test_fuzz_command_clean_run_exits_zero(capsys):
    code = main([
        "fuzz", "--seeds", "3", "--quick", "--no-paper", "--no-functional",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "all oracles clean" in out


def test_fuzz_command_regime_filter(capsys):
    code = main([
        "fuzz", "--seeds", "2", "--regime", "tiny_fb",
        "--no-paper", "--no-functional",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 regimes (tiny_fb)" in out


def test_fuzz_command_failures_dir(tmp_path, capsys, monkeypatch):
    from repro.fuzz import runner as runner_module
    from repro.fuzz.oracles import OracleFailure

    monkeypatch.setattr(
        runner_module, "run_oracles",
        lambda case, **kwargs: [
            OracleFailure("traffic", case.name, "planted")
        ],
    )
    code = main([
        "fuzz", "--seeds", "1", "--quick", "--no-paper", "--no-shrink",
        "--failures-dir", str(tmp_path / "out"),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "reproducers written" in out
    assert list((tmp_path / "out").glob("*.json"))
