"""The oracle stack: clean on healthy cases, sharp on planted bugs."""

import pytest

from repro.errors import InfeasibleScheduleError
from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import generate_case
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    FreeListMismatch,
    MirroredFreeList,
    OracleFailure,
    _check_diagnostics,
    _check_feasibility,
    _check_probes,
    _check_traffic,
    _Run,
    run_oracles,
)
from repro.workloads.spec import paper_experiments


def test_paper_experiment_passes_all_oracles():
    spec = next(s for s in paper_experiments() if s.id == "E1")
    application, clustering = spec.build()
    case = FuzzCase.from_workload(
        application, clustering, spec.fb_words, name="paper-E1"
    )
    assert run_oracles(case) == []


def test_infeasible_case_passes_diagnostics_oracle():
    """A workload far beyond the set size fails cleanly, not wrongly."""
    case = generate_case("tiny_fb", 0)
    case.fb_words = 64
    failures = run_oracles(case, functional=False)
    assert failures == []


def test_unknown_oracle_names_rejected():
    case = generate_case("baseline", 0)
    with pytest.raises(ValueError, match="unknown oracles"):
        run_oracles(case, oracles=("bogus",))


def test_oracle_subset_runs_only_requested():
    case = generate_case("baseline", 1)
    assert run_oracles(case, oracles=("traffic",)) == []


def test_unbuildable_case_reports_build_failure():
    case = generate_case("baseline", 0)
    case.kernels[0]["inputs"] = ["no_such_object"]
    failures = run_oracles(case)
    assert [f.oracle for f in failures] == ["build"]


# -- planted-bug detection (each oracle must catch its bug class) --------


class _FakeTrace:
    def __init__(self, rf_values):
        self._rf_values = rf_values

    def of_kind(self, kind):
        assert kind == "rf.probe"
        return [
            type("D", (), {"detail": {"rf": rf}})() for rf in self._rf_values
        ]


class _FakeSchedule:
    def __init__(self, decisions):
        self.decisions = decisions


def test_probes_oracle_flags_duplicate_probe():
    case = generate_case("baseline", 0)
    runs = {"ds": _Run(
        scheduler="ds",
        schedule=_FakeSchedule(_FakeTrace([1, 2, 4, 4, 3])),
    )}
    failures = _check_probes(case, runs)
    assert len(failures) == 1
    assert failures[0].oracle == "probes"
    assert "[4]" in failures[0].message


def test_probes_oracle_accepts_unique_probes():
    case = generate_case("baseline", 0)
    runs = {"ds": _Run(
        scheduler="ds",
        schedule=_FakeSchedule(_FakeTrace([1, 2, 4, 3])),
    )}
    assert _check_probes(case, runs) == []


def test_diagnostics_oracle_flags_rounding_collision():
    """The exact pre-fix bug shape: 1029 vs 1024 both render as 1K."""
    case = generate_case("baseline", 0)
    exc = InfeasibleScheduleError(
        "basic: cluster Cl4 needs 1K (RF=1) but one frame-buffer set "
        "holds 1K",
        cluster="Cl4", required=1029, available=1024,
    )
    failures = _check_diagnostics(case, {"basic": _Run("basic", error=exc)})
    assert len(failures) == 1
    assert "exact numbers" in failures[0].message


def test_diagnostics_oracle_flags_inverted_numbers():
    case = generate_case("baseline", 0)
    exc = InfeasibleScheduleError(
        "needs 512 words but holds 1024 words",
        cluster="Cl1", required=512, available=1024,
    )
    failures = _check_diagnostics(case, {"ds": _Run("ds", error=exc)})
    assert len(failures) == 1
    assert "required 512 <= available 1024" in failures[0].message


def test_diagnostics_oracle_flags_missing_numbers():
    case = generate_case("baseline", 0)
    exc = InfeasibleScheduleError("it just does not fit")
    failures = _check_diagnostics(case, {"cds": _Run("cds", error=exc)})
    assert len(failures) == 1
    assert "lacks required/available" in failures[0].message


def test_diagnostics_oracle_accepts_exact_message():
    case = generate_case("baseline", 0)
    exc = InfeasibleScheduleError(
        "basic: cluster Cl4 needs 1029 words (RF=1) but one frame-buffer "
        "set holds 1024 words",
        cluster="Cl4", required=1029, available=1024,
    )
    assert _check_diagnostics(case, {"basic": _Run("basic", error=exc)}) == []


def test_feasibility_oracle_flags_nonmonotone_hierarchy():
    case = generate_case("baseline", 0)
    runs = {
        "basic": _Run("basic", schedule=object()),
        "ds": _Run("ds", error=InfeasibleScheduleError("x")),
        "cds": _Run("cds", schedule=object()),
    }
    oracles = {f.oracle for f in _check_feasibility(case, runs)}
    assert oracles == {"feasibility"}
    assert len(_check_feasibility(case, runs)) == 2  # basic>ds and ds!=cds


class _FakeReport:
    def __init__(self, data_words, context_words):
        self.data_words = data_words
        self.context_words = context_words


def test_traffic_oracle_flags_cds_regression():
    case = generate_case("baseline", 0)
    runs = {
        "basic": _Run("basic", report=_FakeReport(1000, 100)),
        "ds": _Run("ds", report=_FakeReport(800, 50)),
        "cds": _Run("cds", report=_FakeReport(900, 50)),  # worse than DS
    }
    failures = _check_traffic(case, runs)
    assert failures
    assert all(f.oracle == "traffic" for f in failures)
    assert any("cds" == f.scheduler for f in failures)


def test_traffic_oracle_accepts_proper_ordering():
    case = generate_case("baseline", 0)
    runs = {
        "basic": _Run("basic", report=_FakeReport(1000, 100)),
        "ds": _Run("ds", report=_FakeReport(800, 50)),
        "cds": _Run("cds", report=_FakeReport(700, 50)),
    }
    assert _check_traffic(case, runs) == []


# -- the mirrored free list ------------------------------------------------


def test_mirrored_free_list_agrees_on_normal_traffic():
    mirror = MirroredFreeList(256)
    a = mirror.allocate_high(64)
    b = mirror.allocate_low(32)
    mirror.allocate_at(100, 10)
    mirror.free(a.start, a.size)
    mirror.free(b.start, b.size)
    mirror.free(100, 10)
    mirror.check_invariants()
    assert mirror.free_words == 256
    assert mirror.operations >= 6


def test_mirrored_free_list_catches_divergence():
    mirror = MirroredFreeList(128)
    mirror.allocate_high(32)
    # Desynchronise the two lists behind the mirror's back.
    mirror.primary.allocate_low(16)
    with pytest.raises(FreeListMismatch):
        mirror.allocate_low(16)


def test_mirrored_free_list_mirrors_exceptions():
    mirror = MirroredFreeList(64)
    mirror.allocate_high(64)
    from repro.errors import FragmentationError

    with pytest.raises(FragmentationError):
        mirror.allocate_high(1)
    mirror.check_invariants()


def test_exactgap_oracle_clean_on_generated_case():
    case = generate_case("baseline", 3)
    assert run_oracles(case, oracles=("exactgap",)) == []


def test_exactgap_oracle_flags_greedy_mirror_divergence(monkeypatch):
    """Plant: the solver's internal greedy seed stops replaying CDS."""
    from repro.schedule.exact.solver import ExactRetentionSolver

    monkeypatch.setattr(
        ExactRetentionSolver, "_greedy_keeps",
        lambda self, rf, ranked: (),
    )
    spec = next(s for s in paper_experiments() if s.id == "E1")
    application, clustering = spec.build()
    case = FuzzCase.from_workload(
        application, clustering, spec.fb_words, name="paper-E1"
    )
    failures = run_oracles(case, oracles=("exactgap",))
    assert failures, "a desynchronised greedy mirror must fire"
    assert all(f.oracle == "exactgap" for f in failures)
    assert any("greedy mirror diverges" in f.message for f in failures)


def test_exactgap_oracle_flags_traffic_model_divergence(monkeypatch):
    """Plant: the closed-form model over-reports every keep saving."""
    from repro.schedule.exact.traffic import TrafficModel

    original = TrafficModel.keep_saving
    monkeypatch.setattr(
        TrafficModel, "keep_saving",
        lambda self, keep, rf: 10 * original(self, keep, rf),
    )
    spec = next(s for s in paper_experiments() if s.id == "E1")
    application, clustering = spec.build()
    case = FuzzCase.from_workload(
        application, clustering, spec.fb_words, name="paper-E1"
    )
    failures = run_oracles(case, oracles=("exactgap",))
    assert failures, "a lying traffic model must fire"
    assert any("traffic model diverges" in f.message for f in failures)


def test_progequiv_oracle_flags_divergent_stamping(monkeypatch):
    """Plant: the template backend drops every visit's stores."""
    from repro.codegen.templated import ClusterTemplate

    original = ClusterTemplate.__init__

    def lying_init(self, cluster_index, fb_set, context_loads, loads,
                   compute, stores):
        original(self, cluster_index, fb_set, context_loads, loads,
                 compute, ())

    monkeypatch.setattr(ClusterTemplate, "__init__", lying_init)
    spec = next(s for s in paper_experiments() if s.id == "E1")
    application, clustering = spec.build()
    case = FuzzCase.from_workload(
        application, clustering, spec.fb_words, name="paper-E1"
    )
    failures = run_oracles(case, oracles=("progequiv",))
    assert failures, "a lying template backend must fire"
    assert any("differs from reference" in f.message for f in failures)


def test_oracle_names_are_stable():
    assert set(ORACLE_NAMES) == {
        "probes", "diagnostics", "feasibility", "traffic", "engine",
        "trace", "batchcompile", "exactgap", "progequiv", "freelist",
        "verifier", "hazards", "simengine", "functional",
    }
    failure = OracleFailure("traffic", "case", "msg", scheduler="cds")
    assert failure.to_dict() == {
        "oracle": "traffic", "case": "case", "message": "msg",
        "scheduler": "cds",
    }
