"""FuzzCase capture, replay, and JSON round-trip."""

import json

import pytest

from repro.errors import ApplicationError
from repro.fuzz.case import FuzzCase
from repro.workloads.random_gen import random_application


def _case(seed: int = 3, fb_words: int = 2048) -> FuzzCase:
    application, clustering = random_application(seed)
    return FuzzCase.from_workload(
        application, clustering, fb_words, regime="test", seed=seed
    )


def test_from_workload_captures_structure():
    application, clustering = random_application(5)
    case = FuzzCase.from_workload(application, clustering, 1024)
    assert case.total_iterations == application.total_iterations
    assert set(case.objects) == set(application.objects)
    assert [k["name"] for k in case.kernels] == [
        kernel.name for kernel in application.kernels
    ]
    assert case.groups == [list(c.kernel_names) for c in clustering]
    assert case.fb_sets == [c.fb_set for c in clustering]


def test_build_reconstructs_equivalent_workload():
    case = _case()
    application, clustering = case.build()
    original_app, original_cl = random_application(3)
    assert application.total_iterations == original_app.total_iterations
    assert set(application.objects) == set(original_app.objects)
    for name, obj in application.objects.items():
        assert obj.size == original_app.objects[name].size
        assert obj.invariant == original_app.objects[name].invariant
    assert [k.name for k in application.kernels] == [
        k.name for k in original_app.kernels
    ]
    assert application.final_outputs == original_app.final_outputs
    assert [c.fb_set for c in clustering] == [c.fb_set for c in original_cl]


def test_json_roundtrip_is_lossless(tmp_path):
    case = _case()
    case.failing_oracle = "traffic"
    path = tmp_path / "case.json"
    case.save(path)
    again = FuzzCase.load(path)
    assert again.to_dict() == case.to_dict()
    # The file itself is plain JSON (corpus entries are reviewable).
    payload = json.loads(path.read_text())
    assert payload["name"] == case.name
    assert payload["failing_oracle"] == "traffic"
    assert "xfail" not in payload  # only written when set


def test_xfail_flag_roundtrips(tmp_path):
    case = _case()
    case.xfail = True
    path = tmp_path / "case.json"
    case.save(path)
    assert FuzzCase.load(path).xfail is True


def test_build_rejects_invalid_structure():
    case = _case()
    case.kernels[0]["inputs"] = ["no_such_object"]
    with pytest.raises(ApplicationError):
        case.build()


def test_weight_shrinks_with_structure():
    case = _case()
    lighter = FuzzCase.from_dict(case.to_dict())
    lighter.total_iterations = 1
    assert lighter.weight < case.weight
