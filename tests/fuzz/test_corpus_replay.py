"""Replay every shrunk reproducer under ``tests/corpus/``.

Each corpus entry is a :class:`~repro.fuzz.case.FuzzCase` JSON file:

* regular entries are regressions of **fixed** bugs and must pass the
  whole oracle stack forever;
* entries with ``"xfail": true`` reproduce **known, unfixed** bugs —
  they are expected to keep failing their recorded oracle until the
  fix lands (at which point the flag is removed to pin the fix).
"""

from pathlib import Path

import pytest

from repro.fuzz.case import FuzzCase
from repro.fuzz.oracles import run_oracles

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_exists():
    assert CORPUS, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_case_replays(path):
    case = FuzzCase.load(path)
    failures = run_oracles(case)
    if case.xfail:
        still_failing = [
            f for f in failures
            if not case.failing_oracle or f.oracle == case.failing_oracle
        ]
        if still_failing:
            pytest.xfail(
                f"known-unfixed reproducer ({case.failing_oracle}): "
                f"{still_failing[0].message}"
            )
        pytest.fail(
            f"{path.name} no longer fails oracle "
            f"{case.failing_oracle!r} — the bug appears fixed; remove "
            f'"xfail": true to pin the fix'
        )
    assert failures == [], (
        f"{path.name} regressed: "
        + "; ".join(f"[{f.oracle}] {f.message}" for f in failures)
    )
