"""The shrinking loop: minimal reproducers that still fail their oracle."""

from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import generate_case
from repro.fuzz.oracles import OracleFailure
from repro.fuzz.shrink import shrink_case


def _fails_when(predicate):
    """A synthetic oracle check from a case predicate."""

    def check(case):
        if predicate(case):
            return [OracleFailure("synthetic", case.name, "planted")]
        return []

    return check


def test_shrinks_to_single_kernel_for_size_triggered_bug():
    case = generate_case("baseline", 11)
    check = _fails_when(
        lambda c: any(s["size"] > 40 for s in c.objects.values())
    )
    shrunk = shrink_case(case, "synthetic", check=check)
    assert shrunk.weight < case.weight
    assert len(shrunk.kernels) == 1
    assert shrunk.total_iterations == 1
    assert check(shrunk)  # still fails
    shrunk.build()  # still a valid application
    assert shrunk.failing_oracle == "synthetic"


def test_shrunk_case_preserves_structural_trigger():
    """A bug needing two clusters keeps two clusters after shrinking."""
    case = generate_case("baseline", 7)
    check = _fails_when(lambda c: len(c.groups) >= 2)
    shrunk = shrink_case(case, "synthetic", check=check)
    assert len(shrunk.groups) == 2
    assert all(group for group in shrunk.groups)
    shrunk.build()


def test_iteration_triggered_bug_keeps_iterations():
    case = generate_case("baseline", 4)
    check = _fails_when(lambda c: c.total_iterations >= 3)
    shrunk = shrink_case(case, "synthetic", check=check)
    assert shrunk.total_iterations == 3
    shrunk.build()


def test_original_case_is_not_mutated():
    case = generate_case("baseline", 2)
    before = case.to_dict()
    shrink_case(case, "synthetic", check=_fails_when(lambda c: True))
    assert case.to_dict() == before


def test_unshrinkable_failure_returns_copy():
    """If no reduction keeps the oracle failing, the original survives."""
    case = generate_case("baseline", 6)
    fingerprint = case.to_dict()

    def check(candidate):
        # Only the exact original case fails.
        if candidate.to_dict() == fingerprint:
            return [OracleFailure("synthetic", candidate.name, "exact")]
        return []

    shrunk = shrink_case(case, "synthetic", check=check)
    stripped = shrunk.to_dict()
    stripped.pop("failing_oracle", None)
    assert stripped == fingerprint


def test_attempt_budget_bounds_the_loop():
    case = generate_case("deep_chains", 3)
    calls = []

    def check(candidate):
        calls.append(1)
        return [OracleFailure("synthetic", candidate.name, "always")]

    shrink_case(case, "synthetic", check=check, max_attempts=10)
    # The budget counts candidate evaluations that reached the checker;
    # invalid candidates are rejected before the check and cost nothing.
    assert len(calls) <= 10


def test_shrunk_reproducer_roundtrips_to_corpus_json(tmp_path):
    case = generate_case("baseline", 9)
    check = _fails_when(lambda c: len(c.kernels) >= 1)
    shrunk = shrink_case(case, "synthetic", check=check)
    path = tmp_path / "repro.json"
    shrunk.save(path)
    again = FuzzCase.load(path)
    assert again.failing_oracle == "synthetic"
    again.build()
