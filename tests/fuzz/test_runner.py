"""The fuzz campaign driver: matrices, fan-out, persistence, metrics."""

import json

import pytest

from repro.fuzz import runner as runner_module
from repro.fuzz.case import FuzzCase
from repro.fuzz.oracles import OracleFailure
from repro.fuzz.runner import _task_matrix, run_fuzz
from repro.obs import metrics


def test_quick_matrix_round_robins_regimes():
    tasks = _task_matrix(
        list(range(6)), ("a", "b", "c"), quick=True, functional=False,
        cache_dir=None, oracles=None,
    )
    assert len(tasks) == 6
    assert [t[0] for t in tasks] == ["a", "b", "c", "a", "b", "c"]


def test_full_matrix_is_cross_product():
    tasks = _task_matrix(
        list(range(4)), ("a", "b"), quick=False, functional=True,
        cache_dir=None, oracles=None,
    )
    assert len(tasks) == 8
    assert {t[0] for t in tasks} == {"a", "b"}


def test_quick_campaign_runs_clean_serially():
    report = run_fuzz(
        range(5), quick=True, include_paper=False, functional=False
    )
    assert report.ok
    assert report.cases_run == 5
    assert "all oracles clean" in report.summary()


def test_parallel_campaign_matches_serial():
    serial = run_fuzz(
        range(4), quick=True, include_paper=False, functional=False
    )
    parallel = run_fuzz(
        range(4), quick=True, include_paper=False, functional=False, jobs=2
    )
    assert serial.cases_run == parallel.cases_run
    assert serial.ok == parallel.ok


def test_paper_anchor_cases_included():
    report = run_fuzz(
        range(0), include_paper=True, functional=False
    )
    assert report.cases_run >= 12  # the Table-1 experiment list
    assert report.ok


def test_unknown_regime_rejected():
    with pytest.raises(ValueError, match="unknown regimes"):
        run_fuzz(range(2), regimes=("bogus",))


def test_failures_are_shrunk_and_persisted(tmp_path, monkeypatch):
    planted = {"count": 0}

    def fake_run_oracles(case, **kwargs):
        planted["count"] += 1
        return [OracleFailure("traffic", case.name, "planted failure")]

    monkeypatch.setattr(runner_module, "run_oracles", fake_run_oracles)
    failures_dir = tmp_path / "failures"
    report = run_fuzz(
        range(2), quick=True, include_paper=False, shrink=False,
        failures_dir=str(failures_dir),
    )
    assert not report.ok
    assert len(report.findings) == 2
    written = sorted(failures_dir.glob("*.json"))
    assert len(written) == 2
    payload = json.loads(written[0].read_text())
    assert payload["failing_oracle"] == "traffic"
    FuzzCase.from_dict(payload).build()  # reproducers replay standalone
    assert report.findings[0].reproducer_path
    assert "planted failure" in report.summary()


def test_campaign_metrics_counters(monkeypatch):
    registry = metrics.get_registry()
    registry.reset()
    previous = metrics.set_metrics_active(True)
    try:
        run_fuzz(range(3), quick=True, include_paper=False,
                 functional=False)
    finally:
        metrics.set_metrics_active(previous)
    assert registry.counter("cases", scope="fuzz") == 3
    assert registry.counter("failing_cases", scope="fuzz") == 0
    registry.reset()
