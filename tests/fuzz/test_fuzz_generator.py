"""The regime matrix: determinism and adversarial shape."""

import pytest

from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import cluster_data_size_naive
from repro.fuzz.generator import REGIMES, generate_case, regime_names
from repro.workloads.random_gen import random_application


def test_regime_names_cover_the_matrix():
    assert regime_names() == tuple(REGIMES)
    assert set(regime_names()) == {
        "baseline", "tiny_fb", "nondivisor_rf", "invariant_tables",
        "deep_chains",
    }


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_cases_are_deterministic_and_build(regime):
    first = generate_case(regime, 9)
    second = generate_case(regime, 9)
    assert first.to_dict() == second.to_dict()
    application, clustering = first.build()
    assert application.total_iterations == first.total_iterations
    assert len(clustering) == len(first.groups)
    assert first.regime == regime
    assert first.seed == 9


def test_unknown_regime_is_rejected():
    with pytest.raises(ValueError, match="unknown regime"):
        generate_case("nope", 0)


def test_tiny_fb_straddles_the_footprint():
    """The tiny_fb set size sits within a few words of the RF=1 floor."""
    for seed in range(8):
        case = generate_case("tiny_fb", seed)
        application, clustering = case.build()
        dataflow = analyze_dataflow(application, clustering)
        footprint = max(
            cluster_data_size_naive(dataflow, c.index, 1, ())
            for c in clustering
        )
        assert abs(case.fb_words - footprint) <= 64


def test_nondivisor_rf_uses_prime_iterations():
    for seed in range(6):
        case = generate_case("nondivisor_rf", seed)
        n = case.total_iterations
        assert n >= 7
        assert all(n % d for d in range(2, n))  # prime


def test_invariant_tables_regime_produces_invariant_objects():
    case = generate_case("invariant_tables", 1)
    invariants = [
        name for name, spec in case.objects.items() if spec["invariant"]
    ]
    assert invariants
    assert all(case.objects[name]["size"] >= 256 for name in invariants)


def test_deep_chains_regime_runs_long_clusters():
    case = generate_case("deep_chains", 2)
    assert max(len(group) for group in case.groups) >= 5


def test_random_application_default_stream_is_unchanged():
    """New generator knobs must not perturb historical seeds.

    Golden values captured before the adversarial knobs were added; if
    this test fails, a new parameter is consuming RNG draws at its
    default value and every seeded corpus result shifts.
    """
    application, _ = random_application(0)
    assert application.total_iterations == 5
    assert [k.name for k in application.kernels] == ["c0k0", "c0k1", "c1k0"]
    sizes = sorted(
        (obj.name, obj.size) for obj in application.objects.values()
    )
    assert sizes == [
        ("in_0_0", 44), ("in_0_1", 148), ("in_1_0", 182),
        ("mid_0_0", 95), ("out_0", 66), ("out_1", 96),
        ("table0", 29), ("xres0", 201), ("xres1", 238),
    ]


def test_random_application_adversarial_knobs():
    application, clustering = random_application(
        4,
        min_kernels_per_cluster=4,
        max_kernels_per_cluster=6,
        min_object_words=1,
        max_object_words=16,
        invariant_tables=2,
        invariant_table_words=(100, 200),
    )
    assert all(len(c.kernel_names) >= 4 for c in clustering)
    invariants = [o for o in application.objects.values() if o.invariant]
    assert len(invariants) == 2
    assert all(100 <= o.size <= 200 for o in invariants)
    # Each table is consumed by at least two clusters' first kernels.
    for table in invariants:
        consumers = {
            clustering.cluster_of(kernel.name).index
            for kernel in application.kernels
            if table.name in kernel.inputs
        }
        assert len(consumers) >= 2
