"""Tests for the event-driven simulator."""

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture, TimingModel
from repro.codegen.generator import generate_program
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator


def _run(app, clustering, scheduler_cls, fb="2K", **sim_kwargs):
    arch = Architecture.m1(fb)
    schedule = scheduler_cls(arch).schedule(app, clustering)
    program = generate_program(schedule)
    return Simulator(MorphoSysM1(arch), **sim_kwargs).run(program)


class TestTimingSanity:
    def test_makespan_at_least_compute(self, sharing_app,
                                       sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        assert report.total_cycles >= report.compute_cycles
        assert report.compute_cycles == sum(
            k.cycles for k in sharing_app.kernels
        ) * sharing_app.total_iterations

    def test_makespan_at_least_dma_busy(self, sharing_app,
                                        sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        assert report.total_cycles >= report.dma_busy_cycles

    def test_visits_are_ordered_and_non_overlapping(self, sharing_app,
                                                    sharing_clustering):
        report = _run(sharing_app, sharing_clustering,
                      CompleteDataScheduler)
        previous_end = 0
        for timing in report.visits:
            assert timing.compute_start >= previous_end
            assert timing.compute_start >= timing.prep_finish
            previous_end = timing.compute_end

    def test_dma_transfers_serialised(self, sharing_app,
                                      sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        previous_finish = 0
        for transfer in report.transfers:
            assert transfer.start >= previous_finish
            previous_finish = transfer.finish

    def test_stall_accounting(self, sharing_app, sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        gaps = report.visits[0].compute_start + sum(
            max(0, b.compute_start - a.compute_end)
            for a, b in zip(report.visits, report.visits[1:])
        )
        assert report.rc_stall_cycles == gaps


class TestSchedulerOrdering:
    def test_cds_fastest(self, sharing_app, sharing_clustering):
        basic = _run(sharing_app, sharing_clustering, BasicScheduler)
        ds = _run(sharing_app, sharing_clustering, DataScheduler)
        cds = _run(sharing_app, sharing_clustering, CompleteDataScheduler)
        assert cds.total_cycles <= ds.total_cycles <= basic.total_cycles
        assert cds.data_words < basic.data_words

    def test_improvement_metric(self, sharing_app, sharing_clustering):
        basic = _run(sharing_app, sharing_clustering, BasicScheduler)
        cds = _run(sharing_app, sharing_clustering, CompleteDataScheduler)
        improvement = cds.improvement_over(basic)
        assert 0 < improvement < 1
        assert improvement == pytest.approx(
            (basic.total_cycles - cds.total_cycles) / basic.total_cycles
        )

    def test_basic_serialises_transfers(self, sharing_app,
                                        sharing_clustering):
        """Basic mode: no compute/transfer overlap -> makespan equals
        DMA busy + compute + idle gaps, with RC stalled whenever the
        DMA works."""
        report = _run(sharing_app, sharing_clustering, BasicScheduler)
        # All DMA time stalls the RC array, except the final stores
        # which drain after the last computation.
        last_store_cycles = sum(
            tr.cycles for tr in report.transfers
            if tr.start >= report.visits[-1].compute_end
        )
        assert report.rc_stall_cycles >= \
            report.dma_busy_cycles - last_store_cycles

    def test_ds_overlaps_transfers(self, sharing_app, sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        # Pipelined: most DMA time hides under compute.
        assert report.rc_stall_cycles < report.dma_busy_cycles

    def test_context_traffic_ratio(self, sharing_app, sharing_clustering):
        basic = _run(sharing_app, sharing_clustering, BasicScheduler)
        ds = _run(sharing_app, sharing_clustering, DataScheduler)
        assert basic.context_words > ds.context_words


class TestDmaPolicies:
    def test_all_policies_run(self, sharing_app, sharing_clustering):
        for policy in DmaPolicy:
            report = _run(sharing_app, sharing_clustering,
                          CompleteDataScheduler, dma_policy=policy)
            assert report.total_cycles > 0

    def test_contexts_first_no_slower(self, sharing_app,
                                      sharing_clustering):
        """The [4]-style default should be at least as good as the
        naive stores-first ordering."""
        default = _run(sharing_app, sharing_clustering,
                       CompleteDataScheduler,
                       dma_policy=DmaPolicy.CONTEXTS_FIRST)
        naive = _run(sharing_app, sharing_clustering,
                     CompleteDataScheduler,
                     dma_policy=DmaPolicy.STORES_FIRST)
        assert default.total_cycles <= naive.total_cycles


class TestReportDerived:
    def test_utilisations_bounded(self, sharing_app, sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        assert 0 < report.rc_utilisation <= 1
        assert 0 < report.dma_utilisation <= 1

    def test_gantt_renders(self, sharing_app, sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        chart = report.gantt()
        assert "DMA" in chart
        assert "#" in chart

    def test_transfer_counts(self, sharing_app, sharing_clustering):
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        assert report.data_load_count > 0
        assert report.data_store_count > 0
        assert report.context_load_count > 0


class TestTimingModelEffects:
    def test_slower_dma_hurts_more_when_serial(self, sharing_app,
                                               sharing_clustering):
        def run_with(word_cycles, scheduler_cls):
            arch = Architecture.m1(
                "2K", timing=TimingModel(data_word_cycles=word_cycles)
            )
            schedule = scheduler_cls(arch).schedule(
                sharing_app, sharing_clustering
            )
            return Simulator(MorphoSysM1(arch)).run(
                generate_program(schedule)
            ).total_cycles

        # The absolute advantage of overlapping grows as transfers
        # get more expensive (there is more to hide).
        gap_fast = run_with(1, BasicScheduler) - run_with(1, DataScheduler)
        gap_slow = run_with(8, BasicScheduler) - run_with(8, DataScheduler)
        assert gap_slow > gap_fast > 0

    def test_odd_cluster_count_same_set_conflict(self, sharing_app,
                                                 sharing_clustering):
        """With 3 clusters the round boundary pairs two set-0 visits;
        the simulator must serialise them, never overlap."""
        report = _run(sharing_app, sharing_clustering, DataScheduler)
        by_index = {t.index: t for t in report.visits}
        for timing in report.visits[1:]:
            same_set_prev = [
                t for t in report.visits
                if t.index < timing.index and t.fb_set == timing.fb_set
            ]
            if same_set_prev and same_set_prev[-1].index == timing.index - 1:
                # Consecutive same-set visits: prep waited for the set.
                assert timing.prep_finish >= same_set_prev[-1].compute_end


class TestSharedMachineTraceFlag:
    """Simulators must not leave their trace setting on a shared machine."""

    def _program(self, app, clustering, fb="2K"):
        arch = Architecture.m1(fb)
        schedule = CompleteDataScheduler(arch).schedule(app, clustering)
        return arch, generate_program(schedule)

    def test_constructing_a_simulator_leaves_the_machine_alone(
        self, sharing_app, sharing_clustering
    ):
        arch, _ = self._program(sharing_app, sharing_clustering)
        machine = MorphoSysM1(arch)
        assert machine.dma.record_trace is True
        Simulator(machine, trace=False)
        assert machine.dma.record_trace is True

    def test_run_restores_the_machine_trace_flag(
        self, sharing_app, sharing_clustering
    ):
        arch, program = self._program(sharing_app, sharing_clustering)
        machine = MorphoSysM1(arch)
        Simulator(machine, trace=False).run(program)
        assert machine.dma.record_trace is True

    def test_untraced_run_does_not_poison_a_later_traced_simulator(
        self, sharing_app, sharing_clustering
    ):
        # The original bug: an untraced Simulator flipped the shared
        # machine's flag at construction time, so a traced simulation of
        # the same machine recorded nothing.
        arch, program = self._program(sharing_app, sharing_clustering)
        machine = MorphoSysM1(arch)
        untraced = Simulator(machine, trace=False)
        traced = Simulator(machine, trace=True)
        assert untraced.run(program).transfers == ()
        report = traced.run(program)
        assert report.transfers
