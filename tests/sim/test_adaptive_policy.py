"""Tests for the ADAPTIVE DMA ordering policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.errors import InfeasibleScheduleError
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy, loads_may_precede_stores
from repro.sim.engine import Simulator
from repro.workloads.mpeg import mpeg
from repro.workloads.random_gen import random_application


class TestBudgetPredicate:
    def test_mpeg_windows_have_room(self):
        application, clustering = mpeg()
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            application, clustering
        )
        # Some window must have room (the adaptive win observed on MPEG).
        clusters = range(len(clustering))
        assert any(
            loads_may_precede_stores(schedule, dep, arr, schedule.rf)
            for dep in clusters for arr in clusters if dep != arr
        )

    def test_tight_set_has_no_room(self):
        from repro.workloads.atr import atr_sld
        application, clustering = atr_sld()
        schedule = CompleteDataScheduler(Architecture.m1("8K")).schedule(
            application, clustering
        )
        # ATR-SLD runs its set nearly full: set-0 windows have no room
        # for coexisting stores and loads.
        set0 = [c.index for c in clustering.on_set(0)]
        assert not any(
            loads_may_precede_stores(schedule, dep, arr, schedule.rf)
            for dep in set0 for arr in set0 if dep != arr
        )


class TestAdaptiveExecution:
    def test_matches_relaxed_bound_on_mpeg(self):
        application, clustering = mpeg()
        arch = Architecture.m1("2K")
        schedule = CompleteDataScheduler(arch).schedule(
            application, clustering
        )
        program = generate_program(schedule)

        def run(policy):
            return Simulator(MorphoSysM1(arch), dma_policy=policy).run(
                program
            ).total_cycles

        adaptive = run(DmaPolicy.ADAPTIVE)
        relaxed = run(DmaPolicy.LOADS_FIRST)
        default = run(DmaPolicy.CONTEXTS_FIRST)
        assert adaptive == relaxed < default

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=4000))
    def test_never_slower_and_semantics_preserved(self, seed):
        application, clustering = random_application(seed, iterations=3)
        arch = Architecture.m1("4K")
        try:
            schedule = CompleteDataScheduler(arch).schedule(
                application, clustering
            )
        except InfeasibleScheduleError:
            return
        program = generate_program(schedule)
        default = Simulator(
            MorphoSysM1(arch), dma_policy=DmaPolicy.CONTEXTS_FIRST
        ).run(program)
        adaptive = Simulator(
            MorphoSysM1(arch, functional=True),
            dma_policy=DmaPolicy.ADAPTIVE,
        ).run(program, functional=True)
        assert adaptive.total_cycles <= default.total_cycles
        assert adaptive.functional_verified is True
