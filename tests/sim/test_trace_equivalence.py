"""Trace-off fast path vs. traced simulation: identical aggregates.

``Simulator(machine, trace=False)`` skips recording the per-transfer
DMA trace (the corpus study runs this way); the timing model must be
unaffected.  Every scalar in the report — makespan, stalls, DMA busy
time, traffic words and operation counts — must match the traced run
exactly; only the trace itself may differ.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.errors import InfeasibleScheduleError
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments

SCALARS = (
    "total_cycles",
    "compute_cycles",
    "rc_stall_cycles",
    "dma_busy_cycles",
    "data_load_words",
    "data_store_words",
    "context_words",
    "data_load_count",
    "data_store_count",
    "context_load_count",
)


def _run(architecture, program, trace):
    return Simulator(MorphoSysM1(architecture), trace=trace).run(program)


def _assert_aggregates_match(architecture, program):
    traced = _run(architecture, program, True)
    untraced = _run(architecture, program, False)
    for name in SCALARS:
        assert getattr(traced, name) == getattr(untraced, name), name
    assert traced.transfers
    assert not untraced.transfers


def test_paper_experiments_trace_off_aggregates_match():
    for spec in paper_experiments():
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        program = generate_program(
            CompleteDataScheduler(architecture).schedule(
                application, clustering
            )
        )
        _assert_aggregates_match(architecture, program)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["2K", "4K"]),
)
def test_random_workloads_trace_off_aggregates_match(seed, fb):
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    try:
        schedule = CompleteDataScheduler(architecture).schedule(
            application, clustering
        )
    except InfeasibleScheduleError:
        return
    _assert_aggregates_match(architecture, generate_program(schedule))
