"""Functional-mode tests: schedules must preserve data semantics."""

import numpy as np
import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.core.cluster import Clustering
from repro.errors import SimulationError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator
from repro.sim.functional import (
    populate_external_inputs,
    reference_outputs,
    surrogate_kernel,
)


def _functional_run(app, clustering, scheduler_cls, fb="2K", seed=11):
    arch = Architecture.m1(fb)
    schedule = scheduler_cls(arch).schedule(app, clustering)
    machine = MorphoSysM1(arch, functional=True)
    return Simulator(machine).run(
        generate_program(schedule), functional=True, seed=seed
    )


class TestSurrogate:
    def test_deterministic(self, sharing_app):
        impl = surrogate_kernel(sharing_app, "k1")
        inputs = {"d": np.arange(256), "shared": np.arange(128)}
        first = impl(inputs, 3)
        second = impl(inputs, 3)
        assert np.array_equal(first["r1"], second["r1"])

    def test_sensitive_to_every_input_word(self, sharing_app):
        impl = surrogate_kernel(sharing_app, "k1")
        base = {"d": np.arange(256), "shared": np.arange(128)}
        changed = {"d": base["d"].copy(), "shared": base["shared"].copy()}
        changed["shared"][77] += 1
        assert not np.array_equal(
            impl(base, 0)["r1"], impl(changed, 0)["r1"]
        )

    def test_sensitive_to_iteration(self, sharing_app):
        impl = surrogate_kernel(sharing_app, "k1")
        inputs = {"d": np.arange(256), "shared": np.arange(128)}
        assert not np.array_equal(
            impl(inputs, 0)["r1"], impl(inputs, 1)["r1"]
        )

    def test_missing_input_rejected(self, sharing_app):
        impl = surrogate_kernel(sharing_app, "k1")
        with pytest.raises(SimulationError, match="missing"):
            impl({"d": np.arange(256)}, 0)

    def test_output_sizes_match_objects(self, sharing_app):
        impl = surrogate_kernel(sharing_app, "k3")
        out = impl({"r2": np.zeros(192), "shared": np.zeros(128),
                    "r1": np.zeros(192)}, 0)
        assert out["out"].size == 128


class TestReferenceExecution:
    def test_produces_all_finals(self, sharing_app):
        from repro.arch.external_memory import ExternalMemory
        from repro.sim.functional import build_impls
        memory = ExternalMemory()
        populate_external_inputs(sharing_app, memory)
        golden = reference_outputs(
            sharing_app, memory, build_impls(sharing_app)
        )
        assert len(golden) == sharing_app.total_iterations
        assert all(name == "out" for name, _ in golden)

    def test_missing_inputs_rejected(self, sharing_app):
        from repro.arch.external_memory import ExternalMemory
        from repro.sim.functional import build_impls
        with pytest.raises(SimulationError, match="missing"):
            reference_outputs(
                sharing_app, ExternalMemory(), build_impls(sharing_app)
            )


class TestEndToEnd:
    def test_all_schedulers_preserve_semantics(self, sharing_app,
                                               sharing_clustering):
        for scheduler_cls in (BasicScheduler, DataScheduler,
                              CompleteDataScheduler):
            report = _functional_run(
                sharing_app, sharing_clustering, scheduler_cls
            )
            assert report.functional_verified is True, scheduler_cls.name

    def test_keeps_preserve_semantics(self, sharing_app,
                                      sharing_clustering):
        """The CDS run exercises retained data and results."""
        arch = Architecture.m1("2K")
        schedule = CompleteDataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        )
        assert schedule.keeps  # the interesting path is active
        report = _functional_run(
            sharing_app, sharing_clustering, CompleteDataScheduler
        )
        assert report.functional_verified is True

    def test_invariant_data_preserved(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        for scheduler_cls in (BasicScheduler, DataScheduler,
                              CompleteDataScheduler):
            report = _functional_run(
                invariant_app, clustering, scheduler_cls, fb="2K"
            )
            assert report.functional_verified is True

    def test_multi_kernel_clusters(self, multi_kernel_app,
                                   multi_clustering):
        report = _functional_run(
            multi_kernel_app, multi_clustering, CompleteDataScheduler,
            fb="1K",
        )
        assert report.functional_verified is True

    def test_different_seeds_different_data(self, sharing_app,
                                            sharing_clustering):
        first = _functional_run(
            sharing_app, sharing_clustering, DataScheduler, seed=1
        )
        second = _functional_run(
            sharing_app, sharing_clustering, DataScheduler, seed=2
        )
        # Timing identical, data different — both verified.
        assert first.functional_verified and second.functional_verified
        assert first.total_cycles == second.total_cycles

    def test_library_impl_override(self, sharing_app, sharing_clustering):
        """A custom kernel implementation flows through the pipeline."""
        arch = Architecture.m1("2K")
        schedule = DataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        )

        def doubler(inputs, iteration):
            del iteration
            return {"r2": np.asarray(inputs["r1"], dtype=np.int64) * 2}

        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(
            generate_program(schedule),
            functional=True,
            kernel_impls={"k2": doubler},
        )
        assert report.functional_verified is True
