"""Gantt rendering: frame geometry and the trace-disabled marker."""

from repro.arch.dma import DmaTransfer, TransferKind
from repro.sim.report import SimulationReport, VisitTiming


def _report(visits, transfers, total_cycles):
    return SimulationReport(
        scheduler="cds", application="demo", total_cycles=total_cycles,
        compute_cycles=sum(v.compute_cycles for v in visits),
        rc_stall_cycles=0, dma_busy_cycles=0,
        data_load_words=0, data_store_words=0, context_words=0,
        data_load_count=0, data_store_count=0, context_load_count=0,
        visits=tuple(visits), transfers=tuple(transfers),
    )


def _visit(index, start, end, *, cluster=0):
    return VisitTiming(
        index=index, round_index=0, cluster_index=cluster, fb_set=0,
        prep_finish=start, compute_start=start, compute_end=end,
    )


def _load(start, finish):
    return DmaTransfer(TransferKind.DATA_LOAD, "d", 8, start, finish)


class TestGanttGeometry:
    def test_bar_ending_at_makespan_stays_inside_the_frame(self):
        # A compute window closing exactly at the makespan maps to
        # column `width`; the bar must be clamped, not overflow by one.
        width = 10
        report = _report(
            [_visit(0, 0, 50), _visit(1, 50, 100, cluster=1)],
            [_load(0, 10)],
            total_cycles=100,
        )
        chart = report.gantt(width=width)
        for line in chart.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == width, line
            assert line.endswith("|"), line

    def test_golden_two_visit_chart(self):
        report = _report(
            [_visit(0, 0, 50), _visit(1, 50, 100, cluster=1)],
            [_load(0, 50)],
            total_cycles=100,
        )
        assert report.gantt(width=10).splitlines() == [
            " visit  cluster set  timeline (total 100 cycles)",
            "     0      Cl1   0  |#####     |",
            "     1      Cl2   0  |     #####|",
            "                DMA  |LLLLL     |",
        ]

    def test_tiny_window_still_renders_one_column(self):
        report = _report(
            [_visit(0, 9_999, 10_000)], [_load(0, 1)], total_cycles=10_000
        )
        chart = report.gantt(width=10)
        visit_bar = chart.splitlines()[1].split("|")[1]
        assert visit_bar.count("#") == 1
        assert len(visit_bar) == 10


class TestGanttTraceDisabledMarker:
    def test_no_transfers_prints_marker_instead_of_blank_row(self):
        report = _report([_visit(0, 0, 100)], [], total_cycles=100)
        chart = report.gantt(width=10)
        assert chart.splitlines()[-1] == "                DMA  (trace disabled)"
        assert "|          |" not in chart.splitlines()[-1]

    def test_traced_run_keeps_the_dma_bar(self):
        report = _report([_visit(0, 0, 100)], [_load(0, 100)],
                         total_cycles=100)
        assert chart_last_line(report).endswith("|LLLLLLLLLL|")


def chart_last_line(report):
    return report.gantt(width=10).splitlines()[-1]
