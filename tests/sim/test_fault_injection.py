"""Fault-injection tests: the functional pipeline must *detect* bugs,
not just pass when everything is correct.

Each test plants a specific defect — a wrong kernel implementation, a
dropped store, a corrupted keep — and asserts the right layer catches
it (the verifier statically, or the functional simulator's
golden-output comparison dynamically)."""

import dataclasses

import numpy as np
import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.program import Program
from repro.errors import ProgramVerificationError, SimulationError
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator


@pytest.fixture
def schedule(sharing_app, sharing_clustering):
    return CompleteDataScheduler(Architecture.m1("2K")).schedule(
        sharing_app, sharing_clustering
    )


@pytest.fixture
def program(schedule):
    return generate_program(schedule)


class TestWrongComputation:
    """The golden comparison verifies the *schedule*: both the reference
    and the scheduled run use the same kernel implementations, so a
    consistently-wrong kernel cancels out (that is kernel-library
    territory, covered by tests/kernels).  What the comparison must
    catch is any divergence between the two runs — nondeterminism, or
    state leaking between invocations."""

    def test_nondeterministic_kernel_detected(self, program):
        from repro.sim.functional import surrogate_kernel
        app = program.schedule.application
        correct = surrogate_kernel(app, "k2")
        calls = {"n": 0}

        def flaky(inputs, iteration):
            calls["n"] += 1
            outputs = correct(inputs, iteration)
            if calls["n"] > app.total_iterations:
                # Reference pass done; corrupt the scheduled pass.
                outputs["r2"] = outputs["r2"] + 1
            return outputs

        machine = MorphoSysM1(Architecture.m1("2K"), functional=True)
        with pytest.raises(SimulationError, match="mismatch"):
            Simulator(machine).run(
                program, functional=True, kernel_impls={"k2": flaky}
            )

    def test_stateful_kernel_detected(self, program):
        """An implementation accumulating hidden state across calls
        diverges between the reference and scheduled runs (which invoke
        it in different interleavings)."""
        state = {"acc": 0}

        def leaky(inputs, iteration):
            state["acc"] += 1
            value = sum(int(np.sum(v)) for v in inputs.values())
            return {
                "r1": np.full(192, (value + state["acc"]) % 65536,
                              dtype=np.int64)
            }

        machine = MorphoSysM1(Architecture.m1("2K"), functional=True)
        with pytest.raises(SimulationError, match="mismatch"):
            Simulator(machine).run(
                program, functional=True, kernel_impls={"k1": leaky}
            )


class TestCorruptedPrograms:
    def test_dropped_store_caught_statically(self, program):
        visits = list(program.visits)
        index = next(
            i for i, ops in enumerate(visits)
            if any(s.name == "out" for s in ops.stores)
        )
        visits[index] = dataclasses.replace(
            visits[index],
            stores=tuple(
                s for s in visits[index].stores if s.name != "out"
            ),
        )
        bad = Program(schedule=program.schedule, visits=tuple(visits))
        with pytest.raises(ProgramVerificationError):
            Simulator(
                MorphoSysM1(Architecture.m1("2K"))
            ).run(bad)

    def test_unverified_corrupt_program_caught_dynamically(self, program):
        """Even with the static verifier disabled, the functional run
        trips on the missing operand."""
        visits = list(program.visits)
        visits[0] = dataclasses.replace(
            visits[0],
            data_loads=tuple(
                l for l in visits[0].data_loads if l.name != "d"
            ),
        )
        bad = Program(schedule=program.schedule, visits=tuple(visits))
        machine = MorphoSysM1(Architecture.m1("2K"), functional=True)
        with pytest.raises(SimulationError, match="not in set"):
            Simulator(machine, verify=False).run(bad, functional=True)


class TestCorruptedKeeps:
    def test_stripped_keeps_fail_functionally(self, schedule, program):
        """Remove the keeps from the schedule while leaving the op
        stream (which omits the kept loads): the drain logic now drops
        the data and the functional run fails — retention is
        load-bearing, not an accounting trick."""
        assert schedule.keeps
        stripped = dataclasses.replace(schedule, keeps=())
        bad = Program(schedule=stripped, visits=program.visits)
        machine = MorphoSysM1(Architecture.m1("2K"), functional=True)
        with pytest.raises((SimulationError, ProgramVerificationError)):
            Simulator(machine, verify=False).run(bad, functional=True)


class TestSeedIsolation:
    def test_prepopulated_memory_respected(self, program):
        """If the caller pre-populates external memory, the simulator
        uses those values rather than reseeding."""
        from repro.sim.functional import populate_external_inputs
        app = program.schedule.application
        machine = MorphoSysM1(Architecture.m1("2K"), functional=True)
        populate_external_inputs(app, machine.external_memory, seed=123)
        marker = machine.external_memory.get("d", 0).copy()
        report = Simulator(machine).run(program, functional=True, seed=999)
        assert report.functional_verified
        assert np.array_equal(machine.external_memory.get("d", 0), marker)
