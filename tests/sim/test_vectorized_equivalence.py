"""Vectorized timeline evaluator ≡ reference event-driven engine.

Mirrors the ``incremental ≡ naive`` occupancy-engine pattern: the
vectorized fast path must produce byte-identical
:class:`~repro.sim.report.SimulationReport`\\ s — every aggregate and
every per-visit :class:`~repro.sim.report.VisitTiming` — across the
fuzz generator matrix, the paper experiments, every DMA policy, and
the serial (non-pipelined) Basic schedule shape.  On top, the timing
invariants any correct report must satisfy are property-tested.
"""

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.errors import InfeasibleScheduleError, SimulationError
from repro.fuzz.generator import generate_case, regime_names
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator
from repro.workloads.spec import paper_experiments

SCHEDULERS = (BasicScheduler, DataScheduler, CompleteDataScheduler)


def _programs(application, clustering, architecture):
    """One lowered program per feasible scheduler."""
    programs = []
    for scheduler_cls in SCHEDULERS:
        try:
            schedule = scheduler_cls(architecture).schedule(
                application, clustering
            )
        except InfeasibleScheduleError:
            continue
        programs.append((scheduler_cls.name, generate_program(schedule)))
    return programs


def _run(program, architecture, engine, policy=DmaPolicy.CONTEXTS_FIRST):
    return Simulator(
        MorphoSysM1(architecture), dma_policy=policy, trace=False,
        verify=False, engine=engine,
    ).run(program)


def _assert_identical(reference, vectorized, label):
    assert reference.visits == vectorized.visits, (
        f"{label}: per-visit timings diverge"
    )
    assert reference == vectorized, f"{label}: reports diverge"


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("regime", regime_names())
    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_fuzz_matrix(self, regime, seed):
        case = generate_case(regime, seed)
        try:
            application, clustering = case.build()
        except Exception:
            pytest.skip("case does not build")
        architecture = case.architecture()
        for name, program in _programs(
            application, clustering, architecture
        ):
            _assert_identical(
                _run(program, architecture, "reference"),
                _run(program, architecture, "vectorized"),
                f"{regime}/{seed}/{name}",
            )

    @pytest.mark.parametrize(
        "spec", paper_experiments(), ids=lambda spec: spec.id
    )
    def test_paper_experiments(self, spec):
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        for name, program in _programs(
            application, clustering, architecture
        ):
            _assert_identical(
                _run(program, architecture, "reference"),
                _run(program, architecture, "vectorized"),
                f"{spec.id}/{name}",
            )

    @pytest.mark.parametrize("policy", list(DmaPolicy))
    def test_every_dma_policy(self, policy):
        spec = next(
            s for s in paper_experiments() if s.id.upper() == "MPEG"
        )
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        for name, program in _programs(
            application, clustering, architecture
        ):
            _assert_identical(
                _run(program, architecture, "reference", policy),
                _run(program, architecture, "vectorized", policy),
                f"{policy.value}/{name}",
            )


class TestTimingInvariants:
    """Properties any valid report must satisfy, on the fast path."""

    def _reports(self):
        for spec in paper_experiments():
            application, clustering = spec.build()
            architecture = Architecture.m1(spec.fb)
            for name, program in _programs(
                application, clustering, architecture
            ):
                yield (
                    f"{spec.id}/{name}",
                    architecture,
                    _run(program, architecture, "auto"),
                )

    def test_total_at_least_compute(self):
        for label, _, report in self._reports():
            assert report.total_cycles >= report.compute_cycles, label

    def test_dma_busy_matches_summed_transfer_costs(self):
        """``dma_busy_cycles`` is exactly the linear timing model summed
        over every transfer: one setup per transfer plus the per-word
        cost of each kind."""
        for label, architecture, report in self._reports():
            timing = architecture.timing
            count = (
                report.data_load_count
                + report.data_store_count
                + report.context_load_count
            )
            expected = (
                timing.dma_setup_cycles * count
                + (report.data_load_words + report.data_store_words)
                * timing.data_word_cycles
                + report.context_words * timing.context_word_cycles
            )
            assert report.dma_busy_cycles == expected, label

    def test_total_bounded_by_serial_sum(self):
        """Overlap can only shorten a run: the makespan never exceeds
        compute + all DMA traffic + stalls laid end to end."""
        for label, _, report in self._reports():
            assert (
                report.total_cycles
                <= report.compute_cycles
                + report.dma_busy_cycles
                + report.rc_stall_cycles
            ), label


class TestEngineSelection:
    def _program(self):
        spec = next(iter(paper_experiments()))
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        schedule = CompleteDataScheduler(architecture).schedule(
            application, clustering
        )
        return generate_program(schedule), architecture

    def test_unknown_engine_rejected(self):
        program, architecture = self._program()
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(MorphoSysM1(architecture), engine="warp")

    def test_vectorized_engine_refuses_tracing(self):
        program, architecture = self._program()
        simulator = Simulator(
            MorphoSysM1(architecture), trace=True, engine="vectorized"
        )
        with pytest.raises(SimulationError, match="vectorized"):
            simulator.run(program)

    def test_auto_with_trace_matches_reference(self):
        """``auto`` falls back to the reference engine under tracing —
        and the traced run's aggregates match the vectorized ones."""
        program, architecture = self._program()
        traced = Simulator(
            MorphoSysM1(architecture), trace=True, engine="auto"
        ).run(program)
        fast = _run(program, architecture, "vectorized")
        assert traced.visits == fast.visits
        assert traced.total_cycles == fast.total_cycles
        assert traced.dma_busy_cycles == fast.dma_busy_cycles
