"""Tests for program generation."""

import pytest

from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.core.cluster import Clustering
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler


def _program(app, clustering, scheduler_cls=CompleteDataScheduler, fb="2K"):
    schedule = scheduler_cls(Architecture.m1(fb)).schedule(app, clustering)
    return generate_program(schedule), schedule


class TestStructure:
    def test_visit_count(self, sharing_app, sharing_clustering):
        program, schedule = _program(sharing_app, sharing_clustering)
        assert len(program) == schedule.rounds * len(sharing_clustering)

    def test_visits_round_major(self, sharing_app, sharing_clustering):
        program, _ = _program(sharing_app, sharing_clustering)
        rounds = [ops.visit.round_index for ops in program]
        assert rounds == sorted(rounds)
        indexes = [ops.visit.index for ops in program]
        assert indexes == list(range(len(program)))

    def test_cm_blocks_alternate(self, sharing_app, sharing_clustering):
        program, _ = _program(sharing_app, sharing_clustering)
        blocks = [ops.visit.cm_block for ops in program]
        assert blocks[:4] == [0, 1, 0, 1]

    def test_iterations_partition_total(self, sharing_app,
                                         sharing_clustering):
        program, schedule = _program(sharing_app, sharing_clustering)
        seen = set()
        for ops in program:
            if ops.visit.cluster_index == 0:
                seen.update(ops.visit.iterations)
        assert seen == set(range(sharing_app.total_iterations))

    def test_compute_is_kernel_outer(self, multi_kernel_app,
                                     multi_clustering):
        program, schedule = _program(
            multi_kernel_app, multi_clustering, DataScheduler, "8K"
        )
        assert schedule.rf > 1
        first_visit = program.visits[0]
        kernels = [run.kernel for run in first_visit.compute]
        # Loop fission: k1 x RF, then k2 x RF, ...
        assert kernels[:schedule.rf] == ["k1"] * schedule.rf

    def test_loads_per_iteration_for_variant_data(self, sharing_app,
                                                  sharing_clustering):
        program, schedule = _program(
            sharing_app, sharing_clustering, DataScheduler
        )
        first_visit = program.visits[0]
        d_loads = [l for l in first_visit.data_loads if l.name == "d"]
        assert len(d_loads) == schedule.rf

    def test_invariant_loaded_once_per_visit(self, invariant_app):
        clustering = Clustering.per_kernel(invariant_app)
        program, schedule = _program(
            invariant_app, clustering, DataScheduler, "8K"
        )
        assert schedule.rf > 1
        first_visit = program.visits[0]
        table_loads = [
            l for l in first_visit.data_loads if l.name == "table"
        ]
        assert len(table_loads) == 1
        assert table_loads[0].iteration == 0

    def test_kept_inputs_generate_no_loads(self, sharing_app,
                                           sharing_clustering):
        program, schedule = _program(sharing_app, sharing_clustering)
        assert "shared" in schedule.keep_names()
        # Cluster 2's visits must not load 'shared'.
        for ops in program:
            if ops.visit.cluster_index == 2:
                assert all(l.name != "shared" for l in ops.data_loads)

    def test_load_order_matches_allocator(self, sharing_app,
                                          sharing_clustering):
        """Kept shared data come first, then inputs by last consumer."""
        program, schedule = _program(sharing_app, sharing_clustering)
        first_visit = program.visits[0]
        names = [l.name for l in first_visit.data_loads]
        # 'shared' is kept with first consumer = cluster 0 -> leads.
        assert names[0] == "shared"

    def test_stores_emitted_per_iteration(self, sharing_app,
                                          sharing_clustering):
        program, schedule = _program(sharing_app, sharing_clustering)
        last_cluster_visits = [
            ops for ops in program if ops.visit.cluster_index == 2
        ]
        for ops in last_cluster_visits:
            outs = [s for s in ops.stores if s.name == "out"]
            assert len(outs) == len(ops.visit.iterations)

    def test_totals(self, sharing_app, sharing_clustering):
        program, schedule = _program(sharing_app, sharing_clustering)
        assert program.total_compute_cycles == sum(
            k.cycles for k in sharing_app.kernels
        ) * sharing_app.total_iterations
        assert program.total_load_words > 0
        assert program.total_store_words > 0
        assert program.total_context_words > 0

    def test_listing(self, sharing_app, sharing_clustering):
        program, _ = _program(sharing_app, sharing_clustering)
        listing = program.listing(max_visits=2)
        assert "visit 0" in listing
        assert "ldctx" in listing and "run" in listing
        assert "more visits" in listing


class TestContextTraffic:
    def test_basic_reloads_every_visit(self, sharing_app,
                                       sharing_clustering):
        basic_program, _ = _program(
            sharing_app, sharing_clustering, BasicScheduler
        )
        ds_program, ds_schedule = _program(
            sharing_app, sharing_clustering, DataScheduler
        )
        assert ds_schedule.rf > 1
        assert basic_program.total_context_words > \
            ds_program.total_context_words
        ratio = (basic_program.total_context_words
                 / ds_program.total_context_words)
        assert ratio == pytest.approx(ds_schedule.rf, rel=0.2)
