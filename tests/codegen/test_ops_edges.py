"""Edge-case validation tests for the op-level IR."""

import pytest

from repro.codegen.ops import LoadContext, Visit, VisitOps, RunKernel
from repro.errors import CodegenError


class TestVisit:
    def test_empty_iterations_rejected(self):
        with pytest.raises(CodegenError):
            Visit(index=0, round_index=0, cluster_index=0, fb_set=0,
                  iterations=())

    def test_unsorted_iterations_rejected(self):
        with pytest.raises(CodegenError):
            Visit(index=0, round_index=0, cluster_index=0, fb_set=0,
                  iterations=(2, 1))

    def test_cm_block_alternates_with_index(self):
        for index in range(6):
            visit = Visit(index=index, round_index=0, cluster_index=0,
                          fb_set=0, iterations=(0,))
            assert visit.cm_block == index % 2


class TestLoadContext:
    def test_zero_words_rejected(self):
        with pytest.raises(CodegenError):
            LoadContext(kernel="k", words=0, cm_block=0)


class TestVisitOps:
    def _visit(self):
        return Visit(index=0, round_index=0, cluster_index=0, fb_set=0,
                     iterations=(0, 1))

    def test_aggregates(self):
        ops = VisitOps(
            visit=self._visit(),
            context_loads=(LoadContext(kernel="k", words=10, cm_block=0),),
            data_loads=(),
            compute=(
                RunKernel(kernel="k", iteration=0, cycles=5, fb_set=0),
                RunKernel(kernel="k", iteration=1, cycles=5, fb_set=0),
            ),
            stores=(),
        )
        assert ops.compute_cycles == 10
        assert ops.context_words == 10
        assert ops.load_words == 0
        assert ops.store_words == 0
