"""Template-compiled codegen vs. the reference generator: byte-identical.

The template backend (:mod:`repro.codegen.templated`) promises the same
contract the batch compiler does for schedules: ``generate_program(...,
engine='templated')`` produces **exactly** the program the reference
generator emits — same visits, same ops in the same order, under both
context-reuse modes — and the vectorized fast verifier returns exactly
the violation list (and first-violation error) the reference replay
does, clean programs and broken ones alike.  These tests enforce the
contract over the fuzz generator matrix (500+ programs), the paper
experiments, hand-built edge cases, and deliberately broken schedules
that force the fast verifier's reference fallback.
"""

import pickle

import pytest

from repro.arch.params import Architecture
from repro.codegen.fastverify import fast_violation_free
from repro.codegen.generator import generate_program
from repro.codegen.templated import TemplateVisits
from repro.codegen.verifier import (
    collect_program_violations,
    iter_program_violations,
    verify_program,
)
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError, ProgramVerificationError
from repro.fuzz.generator import generate_case, regime_names
from repro.schedule import BasicScheduler, CompleteDataScheduler, DataScheduler
from repro.workloads.spec import paper_experiments

_SCHEDULERS = {
    "basic": BasicScheduler,
    "ds": DataScheduler,
    "cds": CompleteDataScheduler,
}


def _schedules_of(application, clustering, architecture):
    """Every feasible (scheduler name, schedule) for one workload."""
    for name, cls in _SCHEDULERS.items():
        try:
            yield name, cls(architecture).schedule(application, clustering)
        except InfeasibleScheduleError:
            continue


def _assert_equivalent(schedule, *, reuse=False, label=""):
    """Reference and templated programs agree in every observable way."""
    reference = generate_program(
        schedule, reuse_resident_contexts=reuse, engine="reference"
    )
    templated = generate_program(
        schedule, reuse_resident_contexts=reuse, engine="templated"
    )
    assert isinstance(templated.visits, TemplateVisits), label
    assert isinstance(reference.visits, tuple), label
    # Equality in both directions: Program's dataclass __eq__ compares
    # tuple-vs-TemplateVisits one way and the reflected way back.
    assert templated == reference, f"{label}: templated != reference"
    assert reference == templated, f"{label}: reference != templated"
    assert collect_program_violations(templated) == list(
        iter_program_violations(reference)
    ), f"{label}: violation lists diverge"
    return reference, templated


def test_fuzz_matrix_byte_identical():
    """The acceptance matrix: every regime x 35 seeds x 3 schedulers x
    both reuse modes — 500+ generated programs compared op by op."""
    compared = 0
    for regime in regime_names():
        for seed in range(35):
            case = generate_case(regime, seed)
            application, clustering = case.build()
            architecture = case.architecture()
            for name, schedule in _schedules_of(
                application, clustering, architecture
            ):
                for reuse in (False, True):
                    _assert_equivalent(
                        schedule, reuse=reuse,
                        label=f"{case.name}/{name}/reuse={reuse}",
                    )
                    compared += 1
    assert compared >= 500


def test_paper_experiments_byte_identical():
    """All bundled experiments, clean and verification-error-free."""
    for spec in paper_experiments():
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        for name, schedule in _schedules_of(
            application, clustering, architecture
        ):
            for reuse in (False, True):
                reference, templated = _assert_equivalent(
                    schedule, reuse=reuse,
                    label=f"{spec.id}/{name}/reuse={reuse}",
                )
                # Clean programs take the vectorized early exit.
                assert fast_violation_free(templated)
                verify_program(templated)
                verify_program(reference)


def _single_visit_schedule():
    builder = Application.build("single_visit", total_iterations=1)
    builder.data("a", 8)
    builder.data("y", 8)
    builder.kernel("k", context_words=16, cycles=4,
                   inputs=["a"], outputs=["y"])
    builder.final("y")
    application = builder.finish()
    clustering = Clustering(application, [["k"]])
    return CompleteDataScheduler(Architecture.m1("2K")).schedule(
        application, clustering
    )


def _compute_only_schedule():
    """A kernel with no inputs: the visit has no data loads at all."""
    builder = Application.build("compute_only", total_iterations=3)
    builder.data("z", 8)
    builder.kernel("g", context_words=16, cycles=4, inputs=[],
                   outputs=["z"])
    builder.final("z")
    application = builder.finish()
    clustering = Clustering(application, [["g"]])
    return CompleteDataScheduler(Architecture.m1("2K")).schedule(
        application, clustering
    )


def test_single_visit_program():
    schedule = _single_visit_schedule()
    for reuse in (False, True):
        _, templated = _assert_equivalent(
            schedule, reuse=reuse, label=f"single/reuse={reuse}"
        )
        assert len(templated.visits) == 1
        assert fast_violation_free(templated)


def test_compute_only_program():
    schedule = _compute_only_schedule()
    for reuse in (False, True):
        _, templated = _assert_equivalent(
            schedule, reuse=reuse, label=f"compute_only/reuse={reuse}"
        )
        assert all(not visit.data_loads for visit in templated.visits)


def test_broken_schedule_identical_violations():
    """Dirty programs must fall back to the reference replay: same
    ordered violation list and the same first-violation error."""
    import dataclasses

    for spec in paper_experiments()[:3]:
        application, clustering = spec.build()
        schedule = CompleteDataScheduler(Architecture.m1(spec.fb)).schedule(
            application, clustering
        )
        # Drop the last cluster's stores: final outputs go missing and
        # later loads of shared results dangle.
        plans = list(schedule.cluster_plans)
        broken_plan = dataclasses.replace(plans[-1], stores=())
        broken = dataclasses.replace(
            schedule, cluster_plans=tuple(plans[:-1]) + (broken_plan,)
        )
        for reuse in (False, True):
            reference, templated = _assert_equivalent(
                broken, reuse=reuse, label=f"{spec.id}/broken/reuse={reuse}"
            )
            violations = list(iter_program_violations(reference))
            assert violations, f"{spec.id}: broken schedule verified clean"
            assert not fast_violation_free(templated)
            with pytest.raises(ProgramVerificationError) as via_templated:
                verify_program(templated)
            with pytest.raises(ProgramVerificationError) as via_reference:
                verify_program(reference)
            assert str(via_templated.value) == str(via_reference.value)
            assert str(via_templated.value) == violations[0].message


def test_template_visits_sequence_protocol():
    big = paper_experiments()[0]
    application, clustering = big.build()
    schedule = CompleteDataScheduler(Architecture.m1(big.fb)).schedule(
        application, clustering
    )
    templated = generate_program(schedule, engine="templated")
    reference = generate_program(schedule, engine="reference")
    visits = templated.visits
    assert len(visits) == len(reference.visits)
    # Slices are plain tuples so callers can splice mutated visits.
    assert isinstance(visits[1:3], tuple)
    assert visits[1:3] == reference.visits[1:3]
    assert visits[0] == reference.visits[0]
    assert visits[-1] == reference.visits[-1]
    spliced = visits[:1] + (visits[1],) + visits[2:]
    assert spliced == tuple(reference.visits)
    # Value semantics match the tuple the reference produces.
    assert visits == tuple(reference.visits)
    assert tuple(reference.visits) == visits
    assert hash(visits) == hash(tuple(reference.visits))
    assert list(iter(visits)) == list(reference.visits)


def test_template_visits_pickle_round_trip():
    schedule = _single_visit_schedule()
    templated = generate_program(schedule, engine="templated")
    reference = generate_program(schedule, engine="reference")
    restored = pickle.loads(pickle.dumps(templated))
    # Transported programs are indistinguishable from reference ones.
    assert isinstance(restored.visits, tuple)
    assert restored == reference
    assert pickle.dumps(restored) == pickle.dumps(reference)


def test_fast_verify_does_not_materialize():
    """The fast verifier reads templates directly: a clean program is
    verified without ever stamping its visit ops."""
    big = paper_experiments()[0]
    application, clustering = big.build()
    schedule = CompleteDataScheduler(Architecture.m1(big.fb)).schedule(
        application, clustering
    )
    templated = generate_program(schedule, engine="templated")
    assert len(templated.visits) > 0          # count needs no stamping
    assert fast_violation_free(templated)
    verify_program(templated)
    assert templated.visits._ops is None, "fast verify materialized ops"


def test_generate_program_engine_validation():
    schedule = _single_visit_schedule()
    with pytest.raises(ValueError):
        generate_program(schedule, engine="nonsense")
    auto = generate_program(schedule, engine="auto")
    assert isinstance(auto.visits, TemplateVisits)
