"""Tests for the opt-in context-residency optimisation."""

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator


@pytest.fixture
def two_cluster_schedule(chain_app, chain_clustering):
    return DataScheduler(Architecture.m1("2K")).schedule(
        chain_app, chain_clustering
    )


class TestResidencyReuse:
    def test_default_reloads_every_visit(self, two_cluster_schedule):
        program = generate_program(two_cluster_schedule)
        for ops in program.visits:
            assert ops.context_loads

    def test_reuse_skips_after_warmup(self, two_cluster_schedule):
        """With two clusters the two CM blocks settle after the first
        round; later visits load no contexts."""
        program = generate_program(
            two_cluster_schedule, reuse_resident_contexts=True
        )
        loading_visits = [
            ops.visit.index for ops in program.visits if ops.context_loads
        ]
        assert loading_visits == [0, 1]

    def test_reuse_program_verifies_and_runs(self, two_cluster_schedule):
        program = generate_program(
            two_cluster_schedule, reuse_resident_contexts=True
        )
        verify_program(program)
        arch = Architecture.m1("2K")
        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(program, functional=True)
        assert report.functional_verified is True

    def test_reuse_saves_context_traffic_and_time(self,
                                                  two_cluster_schedule):
        arch = Architecture.m1("2K")
        plain = Simulator(MorphoSysM1(arch)).run(
            generate_program(two_cluster_schedule)
        )
        reused = Simulator(MorphoSysM1(arch)).run(
            generate_program(
                two_cluster_schedule, reuse_resident_contexts=True
            )
        )
        assert reused.context_words < plain.context_words
        assert reused.total_cycles <= plain.total_cycles

    def test_three_clusters_always_displaced(self, sharing_app,
                                             sharing_clustering):
        """With three clusters sharing two blocks, residency never
        survives: the optimisation changes nothing."""
        schedule = DataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        plain = generate_program(schedule)
        reused = generate_program(schedule, reuse_resident_contexts=True)
        assert plain.total_context_words == reused.total_context_words
