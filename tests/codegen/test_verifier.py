"""Tests for the static program verifier.

Valid programs pass; corrupted programs are rejected with specific
errors.  Corruption is injected by rebuilding a visit with an op list
modified in a targeted way.
"""

import dataclasses

import pytest

from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.ops import LoadData, RunKernel, StoreData, VisitOps
from repro.codegen.program import Program
from repro.codegen.verifier import verify_program
from repro.errors import ProgramVerificationError
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler


@pytest.fixture
def valid_program(sharing_app, sharing_clustering):
    schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
        sharing_app, sharing_clustering
    )
    return generate_program(schedule)


def _mutate_visit(program, visit_index, **changes):
    visits = list(program.visits)
    visits[visit_index] = dataclasses.replace(visits[visit_index], **changes)
    return Program(schedule=program.schedule, visits=tuple(visits))


class TestAccepts:
    def test_valid_program_passes(self, valid_program):
        verify_program(valid_program)

    def test_all_schedulers_pass(self, sharing_app, sharing_clustering):
        from repro.schedule.basic import BasicScheduler
        arch = Architecture.m1("2K")
        for cls in (BasicScheduler, DataScheduler, CompleteDataScheduler):
            schedule = cls(arch).schedule(sharing_app, sharing_clustering)
            verify_program(generate_program(schedule))


class TestRejects:
    def test_missing_context_load(self, valid_program):
        bad = _mutate_visit(valid_program, 0, context_loads=())
        with pytest.raises(ProgramVerificationError, match="without contexts"):
            verify_program(bad)

    def test_missing_data_load(self, valid_program):
        first = valid_program.visits[0]
        loads = tuple(l for l in first.data_loads if l.name != "d")
        bad = _mutate_visit(valid_program, 0, data_loads=loads)
        with pytest.raises(ProgramVerificationError, match="reads"):
            verify_program(bad)

    def test_redundant_load(self, valid_program):
        first = valid_program.visits[0]
        bad = _mutate_visit(
            valid_program, 0,
            data_loads=first.data_loads + (first.data_loads[-1],),
        )
        with pytest.raises(ProgramVerificationError, match="redundant"):
            verify_program(bad)

    def test_store_of_absent_object(self, valid_program):
        first = valid_program.visits[0]
        ghost_store = StoreData(name="out", iteration=999, words=128,
                                fb_set=first.visit.fb_set)
        bad = _mutate_visit(
            valid_program, 0, stores=first.stores + (ghost_store,)
        )
        with pytest.raises(ProgramVerificationError, match="store"):
            verify_program(bad)

    def test_skipped_kernel_iteration(self, valid_program):
        first = valid_program.visits[0]
        bad = _mutate_visit(valid_program, 0, compute=first.compute[:-1])
        # Either the missing run's result store trips first, or the
        # iteration count check does.
        with pytest.raises(ProgramVerificationError,
                           match="executed|not in set"):
            verify_program(bad)

    def test_missing_final_store(self, valid_program):
        index = next(
            i for i, ops in enumerate(valid_program.visits)
            if any(s.name == "out" for s in ops.stores)
        )
        ops = valid_program.visits[index]
        bad = _mutate_visit(
            valid_program, index,
            stores=tuple(s for s in ops.stores if s.name != "out"),
        )
        with pytest.raises(ProgramVerificationError, match="stored"):
            verify_program(bad)

    def test_load_of_never_stored_result(self, valid_program):
        """Loading a result that was never stored externally is a
        use-of-garbage bug."""
        first = valid_program.visits[0]
        bogus = LoadData(name="r2", iteration=0, words=192,
                         fb_set=first.visit.fb_set)
        bad = _mutate_visit(
            valid_program, 0, data_loads=first.data_loads + (bogus,)
        )
        with pytest.raises(ProgramVerificationError, match="never stored"):
            verify_program(bad)

    def test_keep_drop_detected(self, sharing_app, sharing_clustering):
        """If the schedule claims a keep but the drain logic wouldn't
        retain it, a later consumer read fails.  Simulated by renaming
        the visit's cluster: cluster 2's kept read of 'shared' only
        works because the keep survives clusters 0..2."""
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        assert "shared" in schedule.keep_names()
        program = generate_program(schedule)
        # Strip the keeps from the schedule: the same op stream now
        # violates residency (cluster 2 reads 'shared' it never loaded).
        stripped = dataclasses.replace(schedule, keeps=())
        bad = Program(schedule=stripped, visits=program.visits)
        with pytest.raises(ProgramVerificationError):
            verify_program(bad)


class TestOpsValidation:
    def test_bad_ops_rejected_at_construction(self):
        with pytest.raises(Exception):
            LoadData(name="x", iteration=-1, words=8, fb_set=0)
        with pytest.raises(Exception):
            LoadData(name="x", iteration=0, words=0, fb_set=0)
        with pytest.raises(Exception):
            StoreData(name="x", iteration=0, words=0, fb_set=0)
        with pytest.raises(Exception):
            RunKernel(kernel="k", iteration=0, cycles=0, fb_set=0)
