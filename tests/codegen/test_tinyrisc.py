"""Tests for the TinyRISC control-program lowering."""

import pytest

from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.tinyrisc import ControlOp, lower_to_tinyrisc
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler


@pytest.fixture
def program(sharing_app, sharing_clustering):
    schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
        sharing_app, sharing_clustering
    )
    return generate_program(schedule)


@pytest.fixture
def control(program):
    return lower_to_tinyrisc(program)


class TestStructure:
    def test_one_label_per_visit(self, program, control):
        assert control.count(ControlOp.LABEL) == len(program.visits)

    def test_sync_points_per_visit(self, program, control):
        assert control.count(ControlOp.DSYNC) == len(program.visits)
        assert control.count(ControlOp.ESYNC) == len(program.visits)

    def test_exec_count_matches_kernel_runs(self, program, control):
        runs = sum(len(ops.compute) for ops in program.visits)
        assert control.count(ControlOp.EXEC) == runs

    def test_sync_ordering_within_visit(self, control):
        """Within one visit: loads before DSYNC before EXECs before
        ESYNC before stores."""
        state = "loads"
        for instruction in control.instructions:
            if instruction.op is ControlOp.LABEL:
                state = "loads"
            elif instruction.op in (ControlOp.LDFB, ControlOp.LDCTXT):
                assert state == "loads", instruction
            elif instruction.op is ControlOp.DSYNC:
                assert state == "loads"
                state = "exec"
            elif instruction.op is ControlOp.EXEC:
                assert state == "exec", instruction
            elif instruction.op is ControlOp.ESYNC:
                assert state == "exec"
                state = "stores"
            elif instruction.op is ControlOp.STFB:
                assert state == "stores", instruction


class TestTrafficAgreement:
    def test_words_match_op_level_program(self, program, control):
        assert control.data_words_loaded == program.total_load_words
        assert control.data_words_stored == program.total_store_words
        assert control.context_words_loaded == program.total_context_words


class TestMemoryMap:
    def test_addresses_unique_and_disjoint(self, control, sharing_app):
        """Every data instance's address range is disjoint from every
        other's and from the context region."""
        ranges = []
        for kernel in sharing_app.kernels:
            start = control.context_map[kernel.name]
            ranges.append((start, start + kernel.context_words))
        for (name, _), start in control.data_map.items():
            ranges.append((start, start + sharing_app.object(name).size))
        ranges.sort()
        for (a_start, a_end), (b_start, b_end) in zip(ranges, ranges[1:]):
            assert a_end <= b_start

    def test_iteration_instances_have_distinct_addresses(self, control):
        assert control.data_map[("d", 0)] != control.data_map[("d", 1)]

    def test_transfer_addresses_resolved(self, control):
        for instruction in control.instructions:
            if instruction.op in (ControlOp.LDFB, ControlOp.STFB,
                                  ControlOp.LDCTXT):
                assert instruction.address is not None
                assert instruction.words > 0


class TestRendering:
    def test_listing_renders_all_ops(self, control):
        listing = control.render()
        assert "ldctxt" in listing
        assert "ldfb" in listing
        assert "stfb" in listing
        assert "exec" in listing
        assert "dsync" in listing
        assert "visit_0_round0_cl1:" in listing

    def test_addresses_rendered_hex(self, control):
        listing = control.render()
        assert "0x" in listing


class TestInvariantData:
    def test_invariant_object_has_single_address(self, invariant_app):
        from repro.core.cluster import Clustering
        schedule = DataScheduler(Architecture.m1("8K")).schedule(
            invariant_app, Clustering.per_kernel(invariant_app)
        )
        control = lower_to_tinyrisc(generate_program(schedule))
        table_instances = [
            key for key in control.data_map if key[0] == "table"
        ]
        assert table_instances == [("table", 0)]
