"""Tests for the TinyRISC control-stream interpreter."""

import dataclasses

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.tinyrisc import (
    ControlInstruction,
    ControlOp,
    TinyRiscInterpreter,
    TinyRiscProgram,
    lower_to_tinyrisc,
)
from repro.errors import CodegenError
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator


@pytest.fixture
def lowered(sharing_app, sharing_clustering):
    arch = Architecture.m1("2K")
    schedule = CompleteDataScheduler(arch).schedule(
        sharing_app, sharing_clustering
    )
    program = generate_program(schedule)
    return arch, program, lower_to_tinyrisc(program)


class TestInterpretation:
    def test_valid_program_interprets(self, lowered):
        arch, program, control = lowered
        stats = TinyRiscInterpreter(
            control, block_words=arch.context_block_words
        ).run()
        assert stats.instructions_executed == len(control.instructions)
        assert stats.kernels_launched == sum(
            len(ops.compute) for ops in program.visits
        )

    def test_traffic_matches_simulator(self, lowered):
        """The control stream carries exactly the traffic the
        event-driven simulator moves — the lowering loses nothing."""
        arch, program, control = lowered
        stats = TinyRiscInterpreter(
            control, block_words=arch.context_block_words
        ).run()
        report = Simulator(MorphoSysM1(arch)).run(program)
        assert stats.data_words_loaded == report.data_load_words
        assert stats.data_words_stored == report.data_store_words
        assert stats.context_words_loaded == report.context_words


def _replace_instruction(control, index, instruction):
    instructions = list(control.instructions)
    instructions[index] = instruction
    return TinyRiscProgram(
        instructions=tuple(instructions),
        data_map=control.data_map,
        context_map=control.context_map,
    )


class TestViolations:
    def test_exec_without_context(self, lowered):
        arch, _, control = lowered
        index = next(
            i for i, ins in enumerate(control.instructions)
            if ins.op is ControlOp.EXEC
        )
        bad_exec = dataclasses.replace(
            control.instructions[index], cm_block=1 - control
            .instructions[index].cm_block
        )
        bad = _replace_instruction(control, index, bad_exec)
        with pytest.raises(CodegenError, match="without contexts"):
            TinyRiscInterpreter(
                bad, block_words=arch.context_block_words
            ).run()

    def test_wild_data_address(self, lowered):
        arch, _, control = lowered
        index = next(
            i for i, ins in enumerate(control.instructions)
            if ins.op is ControlOp.LDFB
        )
        wild = dataclasses.replace(
            control.instructions[index],
            address=control.instructions[index].address + 1,
        )
        bad = _replace_instruction(control, index, wild)
        with pytest.raises(CodegenError, match="does not map"):
            TinyRiscInterpreter(bad).run()

    def test_wrong_context_address(self, lowered):
        arch, _, control = lowered
        index = next(
            i for i, ins in enumerate(control.instructions)
            if ins.op is ControlOp.LDCTXT
        )
        wrong = dataclasses.replace(
            control.instructions[index], target="imposter"
        )
        bad = _replace_instruction(control, index, wrong)
        with pytest.raises(CodegenError, match="does not map"):
            TinyRiscInterpreter(bad).run()

    def test_block_overflow_detected(self, lowered):
        arch, _, control = lowered
        with pytest.raises(CodegenError, match="overflows"):
            TinyRiscInterpreter(control, block_words=16).run()
