"""Property-based invariants of schedules over random applications."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import Architecture
from repro.core.metrics import cluster_data_size, cluster_footprint
from repro.errors import InfeasibleScheduleError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.workloads.random_gen import random_application

SCHEDULERS = (BasicScheduler, DataScheduler, CompleteDataScheduler)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=20000),
       st.sampled_from(["1K", "2K", "8K"]))
def test_plan_invariants(seed, fb):
    """For every scheduler and schedulable random app:

    * loads and kept inputs partition the cluster's inputs;
    * stores and retained outputs are produced in the cluster;
    * every kept input is covered by a keep decision that lists the
      cluster as a consumer;
    * reported peak occupancy fits the frame-buffer set;
    * the CDS never loads more words than the DS.
    """
    application, clustering = random_application(seed, iterations=4)
    architecture = Architecture.m1(fb)
    summaries = {}
    for scheduler_cls in SCHEDULERS:
        try:
            schedule = scheduler_cls(architecture).schedule(
                application, clustering
            )
        except InfeasibleScheduleError:
            continue
        dataflow = schedule.dataflow
        keep_consumers = {}
        for keep in schedule.keeps:
            consumers = getattr(keep, "clusters", None)
            if consumers is None:
                consumers = keep.consumer_clusters
            keep_consumers[keep.name] = set(consumers)
        for plan in schedule.cluster_plans:
            inputs = set(dataflow.inputs_of_cluster(plan.cluster_index))
            assert set(plan.loads) | set(plan.kept_inputs) == inputs
            assert not set(plan.loads) & set(plan.kept_inputs)
            produced = set(dataflow.produced_by_cluster(plan.cluster_index))
            assert set(plan.stores) <= produced
            for name in plan.kept_inputs:
                assert plan.cluster_index in keep_consumers[name], name
            assert plan.peak_occupancy <= architecture.fb_set_words
            # The plan's occupancy claim matches the metric.
            if schedule.scheduler == "basic":
                assert plan.peak_occupancy == cluster_footprint(
                    dataflow, plan.cluster_index
                )
            else:
                assert plan.peak_occupancy == cluster_data_size(
                    dataflow, plan.cluster_index, schedule.rf, schedule.keeps
                )
        summaries[schedule.scheduler] = schedule.summary()
    if "ds" in summaries and "cds" in summaries:
        assert summaries["cds"].total_data_words <= \
            summaries["ds"].total_data_words
    if "basic" in summaries and "ds" in summaries:
        assert summaries["ds"].total_context_words <= \
            summaries["basic"].total_context_words
