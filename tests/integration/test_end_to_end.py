"""Cross-module integration and property-based end-to-end tests.

The heavyweight invariant: for ANY schedulable random application, the
full pipeline (schedule -> lower -> verify -> allocate -> simulate
functionally) must produce exactly the reference outputs, with every
capacity constraint respected, for all three schedulers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate
from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.errors import InfeasibleScheduleError
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator
from repro.workloads.random_gen import random_application

SCHEDULERS = (BasicScheduler, DataScheduler, CompleteDataScheduler)


class TestPipelineProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=5000),
           st.sampled_from(["1K", "2K", "4K"]))
    def test_full_pipeline_on_random_apps(self, seed, fb):
        application, clustering = random_application(
            seed, iterations=4
        )
        architecture = Architecture.m1(fb)
        baseline_cycles = None
        for scheduler_cls in SCHEDULERS:
            try:
                schedule = scheduler_cls(architecture).schedule(
                    application, clustering
                )
            except InfeasibleScheduleError:
                continue
            program = generate_program(schedule)
            verify_program(program)
            # Allocation is overlap-free and in capacity on both sets.
            for fb_set in (0, 1):
                allocation = FrameBufferAllocator(schedule) \
                    .allocate_set(fb_set)
                allocation.verify()
                assert allocation.peak_words <= architecture.fb_set_words
            # Functional simulation matches the reference execution.
            machine = MorphoSysM1(architecture, functional=True)
            report = Simulator(machine).run(
                program, functional=True, seed=seed
            )
            assert report.functional_verified is True
            # Scheduler ordering: each refinement is no slower.
            if baseline_cycles is not None:
                assert report.total_cycles <= baseline_cycles
            baseline_cycles = report.total_cycles

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=5001, max_value=9000))
    def test_traffic_accounting_matches_simulator(self, seed):
        """TransferSummary (static) and the DMA counters (dynamic) must
        agree on total data words."""
        application, clustering = random_application(seed, iterations=3)
        architecture = Architecture.m1("4K")
        for scheduler_cls in SCHEDULERS:
            try:
                schedule = scheduler_cls(architecture).schedule(
                    application, clustering
                )
            except InfeasibleScheduleError:
                continue
            summary = schedule.summary()
            report = Simulator(MorphoSysM1(architecture)).run(
                generate_program(schedule)
            )
            assert report.data_load_words == summary.total_data_loaded_words
            assert report.data_store_words == summary.total_data_stored_words
            assert report.context_words == summary.total_context_words


class TestSimulateHelper:
    def test_one_call_pipeline(self, sharing_app, sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        report = simulate(schedule)
        assert report.total_cycles > 0
        assert report.scheduler == "cds"

    def test_explicit_architecture(self, sharing_app, sharing_clustering):
        arch = Architecture.m1("2K")
        schedule = DataScheduler(arch).schedule(
            sharing_app, sharing_clustering
        )
        report = simulate(schedule, arch, functional=True)
        assert report.functional_verified is True


class TestPartialLastRound:
    def test_iterations_not_divisible_by_rf(self, m1_medium):
        """total_iterations % RF != 0: the last round is partial and
        everything still verifies and simulates."""
        from repro.core.application import Application
        from repro.core.cluster import Clustering
        app = (
            Application.build("partial", total_iterations=7)
            .data("d", 128)
            .kernel("k1", context_words=16, cycles=100, inputs=["d"],
                    outputs=["r"], result_sizes={"r": 64})
            .kernel("k2", context_words=16, cycles=100, inputs=["r"],
                    outputs=["out"], result_sizes={"out": 64})
            .final("out")
            .finish()
        )
        from repro.schedule.base import ScheduleOptions
        clustering = Clustering.per_kernel(app)
        schedule = DataScheduler(
            m1_medium, ScheduleOptions(rf_cap=2)
        ).schedule(app, clustering)
        assert schedule.rf == 2
        assert app.total_iterations % schedule.rf != 0
        program = generate_program(schedule)
        verify_program(program)
        machine = MorphoSysM1(m1_medium, functional=True)
        report = Simulator(machine).run(program, functional=True)
        assert report.functional_verified is True
