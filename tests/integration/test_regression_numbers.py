"""Golden-number regression test.

The whole pipeline (schedulers, code generator, simulator) is
deterministic, so every Table-1 experiment's simulated cycle counts are
pinned in ``golden_table1.json``.  Any refactor that changes them —
intentionally or not — fails here and forces a conscious update
(regenerate with ``python -m repro table1 --json`` and review the
diff against EXPERIMENTS.md).
"""

import json
import pathlib

import pytest

from repro.analysis.compare import compare_experiment
from repro.workloads.spec import paper_experiments

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_table1.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
_SPECS = {spec.id: spec for spec in paper_experiments()}


def test_golden_covers_every_experiment():
    assert set(GOLDEN) == set(_SPECS)


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN))
def test_pinned_numbers(experiment_id):
    row = compare_experiment(_SPECS[experiment_id])
    expected = GOLDEN[experiment_id]
    assert row.rf == expected["rf"]
    assert row.basic.total_cycles == expected["basic_cycles"]
    assert row.ds.total_cycles == expected["ds_cycles"]
    assert row.cds.total_cycles == expected["cds_cycles"]
    assert row.cds.data_words == expected["cds_data_words"]
