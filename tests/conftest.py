"""Shared fixtures: small applications exercising each structural feature."""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow


@pytest.fixture(autouse=True)
def _allocator_debug_invariants():
    """Every allocator built under test self-checks its free list.

    ``check_invariants`` is one O(n) pass, so leaving it on suite-wide
    is cheap; tests that explicitly pass ``debug_invariants=...`` are
    unaffected.
    """
    previous = FrameBufferAllocator.default_debug_invariants
    FrameBufferAllocator.default_debug_invariants = True
    yield
    FrameBufferAllocator.default_debug_invariants = previous


@pytest.fixture
def chain_app():
    """Two clusters, one kernel each, a straight producer/consumer chain."""
    return (
        Application.build("chain", total_iterations=8)
        .data("d", 512)
        .kernel("k1", context_words=32, cycles=600, inputs=["d"],
                outputs=["r"], result_sizes={"r": 256})
        .kernel("k2", context_words=32, cycles=500, inputs=["r"],
                outputs=["out"], result_sizes={"out": 256})
        .final("out")
        .finish()
    )


@pytest.fixture
def chain_clustering(chain_app):
    return Clustering.per_kernel(chain_app)


@pytest.fixture
def sharing_app():
    """Three clusters with a same-set shared datum and shared result.

    ``shared`` is consumed by k1 (cluster 0, set 0) and k3 (cluster 2,
    set 0); ``r1`` is produced in cluster 0 and consumed in cluster 2.
    """
    return (
        Application.build("sharing", total_iterations=12)
        .data("d", 256)
        .data("shared", 128)
        .kernel("k1", context_words=32, cycles=600, inputs=["d", "shared"],
                outputs=["r1"], result_sizes={"r1": 192})
        .kernel("k2", context_words=32, cycles=500, inputs=["r1"],
                outputs=["r2"], result_sizes={"r2": 192})
        .kernel("k3", context_words=32, cycles=400,
                inputs=["r2", "shared", "r1"],
                outputs=["out"], result_sizes={"out": 128})
        .final("out")
        .finish()
    )


@pytest.fixture
def sharing_clustering(sharing_app):
    return Clustering.per_kernel(sharing_app)


@pytest.fixture
def sharing_dataflow(sharing_app, sharing_clustering):
    return analyze_dataflow(sharing_app, sharing_clustering)


@pytest.fixture
def invariant_app():
    """Like sharing_app but the shared datum is an invariant table."""
    return (
        Application.build("invariant", total_iterations=12)
        .data("d", 256)
        .data("table", 128, invariant=True)
        .kernel("k1", context_words=32, cycles=600, inputs=["d", "table"],
                outputs=["r1"], result_sizes={"r1": 192})
        .kernel("k2", context_words=32, cycles=500, inputs=["r1"],
                outputs=["r2"], result_sizes={"r2": 192})
        .kernel("k3", context_words=32, cycles=400, inputs=["r2", "table"],
                outputs=["out"], result_sizes={"out": 128})
        .final("out")
        .finish()
    )


@pytest.fixture
def multi_kernel_app():
    """One cluster of three kernels plus a second cluster; exercises
    within-cluster intermediates and liveness."""
    return (
        Application.build("multi", total_iterations=4)
        .data("a", 200)
        .data("b", 100)
        .kernel("k1", context_words=40, cycles=300, inputs=["a"],
                outputs=["t1"], result_sizes={"t1": 150})
        .kernel("k2", context_words=40, cycles=300, inputs=["t1", "b"],
                outputs=["t2"], result_sizes={"t2": 150})
        .kernel("k3", context_words=40, cycles=300, inputs=["t2", "a"],
                outputs=["c_out"], result_sizes={"c_out": 100})
        .kernel("k4", context_words=40, cycles=300, inputs=["c_out"],
                outputs=["final"], result_sizes={"final": 100})
        .final("final", "c_out")
        .finish()
    )


@pytest.fixture
def multi_clustering(multi_kernel_app):
    return Clustering(multi_kernel_app, [["k1", "k2", "k3"], ["k4"]])


@pytest.fixture
def m1_small():
    return Architecture.m1("1K")


@pytest.fixture
def m1_medium():
    return Architecture.m1("2K")


@pytest.fixture
def m1_large():
    return Architecture.m1("8K")
