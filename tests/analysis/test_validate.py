"""Tests for the one-call schedule validator."""

import dataclasses

import pytest

from repro.analysis.validate import validate_schedule
from repro.arch.params import Architecture
from repro.errors import ReproError
from repro.schedule.base import ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler


class TestValidateSchedule:
    def test_good_schedule_passes_everything(self, sharing_app,
                                             sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        report = validate_schedule(schedule)
        assert report.ok
        assert len(report.checks_passed) == 4
        assert report.timing_report is not None
        assert report.functional_report.functional_verified is True
        assert "OK" in report.summary()

    def test_timing_only_mode(self, sharing_app, sharing_clustering):
        schedule = BasicScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        report = validate_schedule(schedule, functional=False)
        assert report.ok
        assert report.functional_report is None

    def test_corrupted_schedule_fails(self, sharing_app,
                                      sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        # Claim a keep that was never planned: the op stream omits
        # loads the drain logic now drops.
        bad = dataclasses.replace(schedule, keeps=())
        # Plans still reference kept inputs -> generator emits no loads
        # for them -> verification fails.
        report = validate_schedule(bad)
        assert not report.ok
        assert report.failures
        assert "FAIL" in report.summary()

    def test_raise_on_error(self, sharing_app, sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        bad = dataclasses.replace(schedule, keeps=())
        with pytest.raises(ReproError):
            validate_schedule(bad, raise_on_error=True)

    def test_cross_set_schedule_gets_capable_architecture(self):
        """Default-architecture inference detects cross-set keeps."""
        from repro.core.application import Application
        from repro.core.cluster import Clustering
        app = (
            Application.build("cross", total_iterations=4)
            .data("d1", 128).data("d2", 128).data("both", 96)
            .kernel("k1", context_words=16, cycles=200,
                    inputs=["d1", "both"],
                    outputs=["r1"], result_sizes={"r1": 64})
            .kernel("k2", context_words=16, cycles=200,
                    inputs=["d2", "both", "r1"],
                    outputs=["out"], result_sizes={"out": 64})
            .final("out")
            .finish()
        )
        arch = Architecture.m1("1K", fb_cross_set_access=True)
        schedule = CompleteDataScheduler(
            arch, ScheduleOptions(cross_set_retention=True)
        ).schedule(app, Clustering.per_kernel(app))
        assert schedule.keeps
        report = validate_schedule(schedule)  # no architecture passed
        assert report.ok, report.summary()
