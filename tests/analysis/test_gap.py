"""The greedy-vs-exact gap table (`repro gap`) and its CLI plumbing."""

import json

import pytest

from repro.analysis.gap import (
    build_gap_table,
    gap_table_json,
    render_gap_table,
)
from repro.cli import main
from repro.workloads.spec import paper_experiments


def _spec(experiment_id):
    return next(
        spec for spec in paper_experiments() if spec.id == experiment_id
    )


class TestBuildGapTable:
    def test_paper_row_is_sound_and_optimal(self):
        rows = build_gap_table([_spec("E1")], corpus_dir=None)
        assert len(rows) == 1
        row = rows[0]
        assert row.name == "E1"
        assert row.source == "paper"
        assert row.feasible and row.sound and row.complete
        assert row.gap_words == 0
        assert row.exact_traffic_words == row.greedy_traffic_words

    def test_corpus_gap_anchors_report_their_gap(self):
        rows = build_gap_table([], corpus_dir="tests/corpus")
        by_name = {row.name: row for row in rows}
        anchor = by_name["gap-anchor-baseline-seed6"]
        assert anchor.source == "corpus"
        assert anchor.sound and anchor.complete
        assert anchor.gap_words == 578
        assert anchor.exact_rf == anchor.greedy_rf - 1

    def test_seeded_sweep_rows(self):
        rows = build_gap_table([], corpus_dir=None, seeds=2)
        assert [row.name for row in rows] == ["seed-0", "seed-1"]
        assert all(row.source == "seed" for row in rows)
        assert all(row.sound for row in rows)

    def test_render_and_json_agree_on_summary(self):
        rows = build_gap_table([_spec("E1")], corpus_dir="tests/corpus")
        text = render_gap_table(rows)
        assert "greedy suboptimal" in text  # the pinned anchors
        assert "0 unsound" in text
        payload = json.loads(gap_table_json(rows))
        assert payload["summary"]["workloads"] == len(rows)
        assert payload["summary"]["unsound"] == 0
        assert payload["summary"]["with_gap"] == 2
        assert payload["summary"]["total_gap_words"] == 578 + 816

    def test_unsound_row_detected(self, monkeypatch):
        # Sabotage the greedy mirror check to prove the table flags it.
        from repro.analysis import gap as gap_module

        original = gap_module.gap_for_workload

        def sabotaged(*args, **kwargs):
            row = original(*args, **kwargs)
            object.__setattr__(row, "sound", False)
            object.__setattr__(row, "unsound_reason", "planted")
            return row

        monkeypatch.setattr(gap_module, "gap_for_workload", sabotaged)
        rows = gap_module.build_gap_table([_spec("E1")], corpus_dir=None)
        text = render_gap_table(rows)
        assert "UNSOUND: planted" in text


class TestGapCli:
    def test_gap_command_table(self, capsys):
        code = main(["gap", "E1", "--no-corpus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E1" in out
        assert "optimal" in out
        assert "0 unsound" in out

    def test_gap_command_json_output(self, tmp_path, capsys):
        artifact = tmp_path / "gap.json"
        code = main([
            "gap", "E1", "--no-corpus", "--json",
            "--output", str(artifact),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert f"wrote {artifact}" in out
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["unsound"] == 0
        assert payload["rows"][0]["name"] == "E1"

    def test_gap_command_budget_flags(self, capsys):
        code = main([
            "gap", "E1", "--no-corpus", "--max-nodes", "1",
        ])
        out = capsys.readouterr().out
        # Budget truncation is still sound (greedy-seeded incumbent).
        assert code == 0
        assert "0 unsound" in out

    def test_gap_command_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["gap", "BOGUS"])
        assert "unknown experiment 'BOGUS'" in str(excinfo.value)
        assert "E1" in str(excinfo.value)


class TestOracleNameValidation:
    """Satellite: unknown oracle names fail fast with a clear error."""

    def test_fuzz_cli_rejects_unknown_oracle(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--seeds", "1", "--oracle", "bogus"])
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "exactgap" in err

    def test_run_fuzz_rejects_unknown_oracle_before_workers(self):
        from repro.fuzz.runner import run_fuzz

        with pytest.raises(ValueError) as excinfo:
            run_fuzz(range(1), oracles=["bogus"])
        assert "unknown oracles: ['bogus']" in str(excinfo.value)
        assert "exactgap" in str(excinfo.value)

    def test_exactgap_campaign_clean(self, capsys):
        code = main([
            "fuzz", "--seeds", "3", "--quick", "--no-paper",
            "--no-functional", "--oracle", "exactgap",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all oracles clean" in out
