"""Tests for the comparison/reporting layer (Table 1 / Figure 6)."""

import pytest

from repro.analysis.ablation import (
    dma_policy_ablation,
    keep_policy_ablation,
    render_ablation,
    rf_policy_ablation,
)
from repro.analysis.ascii_chart import hbar_chart
from repro.analysis.compare import compare_experiment, compare_workload
from repro.analysis.figure6 import figure6_rows, render_figure6
from repro.analysis.table1 import build_table1, render_table1
from repro.arch.params import Architecture
from repro.workloads.spec import paper_experiments


@pytest.fixture(scope="module")
def specs_by_id():
    return {spec.id: spec for spec in paper_experiments()}


@pytest.fixture(scope="module")
def e1_row(specs_by_id):
    return compare_experiment(specs_by_id["E1"])


class TestCompare:
    def test_row_fields(self, e1_row):
        assert e1_row.workload == "E1"
        assert e1_row.n_clusters == 4
        assert e1_row.max_kernels_per_cluster == 2
        assert e1_row.fb_words == 1024

    def test_all_feasible(self, e1_row):
        assert e1_row.basic.feasible
        assert e1_row.ds.feasible
        assert e1_row.cds.feasible

    def test_improvements_ordered(self, e1_row):
        assert e1_row.cds_improvement_pct >= e1_row.ds_improvement_pct >= 0

    def test_dt_positive_when_keeps_exist(self, e1_row):
        assert e1_row.cds.schedule.keeps
        assert e1_row.dt_words > 0

    def test_compare_workload_direct(self, sharing_app, sharing_clustering):
        row = compare_workload(
            sharing_app, sharing_clustering, Architecture.m1("2K")
        )
        assert row.cds_improvement_pct is not None
        assert row.total_data_words == 896

    def test_infeasible_basic_reported(self, specs_by_id):
        """MPEG at FB=1K: Basic infeasible, DS/CDS fine (paper claim)."""
        application, clustering = specs_by_id["MPEG"].build()
        row = compare_workload(
            application, clustering, Architecture.m1("1K")
        )
        assert not row.basic.feasible
        assert "1K" in row.basic.infeasible_reason
        assert row.ds.feasible and row.cds.feasible
        assert row.ds_improvement_pct is None  # no baseline to compare


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return build_table1()

    def test_twelve_rows(self, table):
        assert len(table) == 12

    def test_rf_matches_paper_everywhere(self, table):
        for row in table:
            assert row.measured_rf == row.spec.paper_rf, row.id

    def test_cds_beats_ds_or_ties(self, table):
        for row in table:
            assert row.measured_cds_pct >= row.measured_ds_pct - 1e-9, row.id

    def test_cds_always_positive(self, table):
        for row in table:
            assert row.measured_cds_pct > 0, row.id

    def test_render(self, table):
        text = render_table1(table)
        assert "E1" in text and "ATR-SLD**" in text
        assert "paper" in text
        text_plain = render_table1(table, show_paper=False)
        assert "paper" not in text_plain


class TestFigure6:
    def test_rows(self):
        rows = figure6_rows(list(paper_experiments())[:2])
        assert len(rows) == 2
        for _, ds_pct, cds_pct in rows:
            assert cds_pct >= ds_pct

    def test_render(self):
        rows = [("E1", 10.0, 25.0), ("E2", None, 40.0)]
        chart = render_figure6(rows)
        assert "Figure 6" in chart
        assert "E1" in chart
        assert "infeasible" in chart  # the None entry


class TestAsciiChart:
    def test_bars_scale(self):
        chart = hbar_chart(
            [("a", (50.0, 25.0)), ("b", (100.0, 0.0))],
            series_labels=("x", "y"),
            max_value=100.0,
            width=10,
        )
        lines = chart.splitlines()
        a_line = next(l for l in lines if l.strip().startswith("a"))
        assert a_line.count("#") == 5

    def test_none_renders_na(self):
        chart = hbar_chart(
            [("a", (None,))], series_labels=("x",), series_marks=("#",),
        )
        assert "n/a" in chart

    def test_mark_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hbar_chart([("a", (1.0,))], series_labels=("x", "y"),
                       series_marks=("#",))


class TestAblation:
    def test_keep_policy_tf_never_worse(self, specs_by_id):
        results = keep_policy_ablation(specs_by_id["E1"])
        by_variant = {r.variant: r for r in results}
        tf = by_variant["keep=tf"]
        assert tf.feasible
        for variant, result in by_variant.items():
            if result.feasible:
                assert tf.total_cycles <= result.total_cycles * 1.05, variant

    def test_rf_policy(self, specs_by_id):
        results = rf_policy_ablation(specs_by_id["E2"])
        assert len(results) == 2
        assert all(r.feasible for r in results)

    def test_dma_policy(self, specs_by_id):
        results = dma_policy_ablation(specs_by_id["E1"])
        assert len(results) == 4  # contexts/loads/stores-first + adaptive

    def test_render(self, specs_by_id):
        results = keep_policy_ablation(specs_by_id["E1"])
        text = render_ablation(results)
        assert "keep=tf" in text
