"""Serial vs. parallel analysis drivers, and the schedule-plan memo.

``--jobs`` fans corpus studies, FB-size sweeps, and ablations over a
process pool; the contract is that the serial and parallel paths run
the same top-level worker per item and therefore produce identical
results.  :func:`~repro.analysis.parallel.plan_key` must depend only on
content — identical workloads rebuilt from scratch hash identically —
so :class:`~repro.analysis.parallel.PlanMemo` can deduplicate
scheduling work across sweep points.
"""

import pytest

from repro.analysis.corpus import corpus_study
from repro.analysis.parallel import (
    PlanMemo,
    default_jobs,
    parallel_map,
    plan_key,
    run_all_ablations,
)
from repro.analysis.sweep import sweep_fb_sizes
from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments


def _square(value):
    return value * value


def _experiment(spec_id):
    return next(s for s in paper_experiments() if s.id == spec_id)


class TestParallelMap:
    def test_serial_and_parallel_identical(self):
        items = list(range(12))
        expected = [_square(item) for item in items]
        assert parallel_map(_square, items) == expected
        assert parallel_map(_square, items, jobs=1) == expected
        assert parallel_map(_square, items, jobs=2) == expected

    def test_jobs_zero_uses_cpu_count(self):
        assert default_jobs() >= 1
        assert parallel_map(_square, [3, 4], jobs=0) == [9, 16]

    def test_order_preserved(self):
        items = list(range(20, 0, -1))
        assert parallel_map(_square, items, jobs=2) == [
            _square(item) for item in items
        ]


class TestDriverEquivalence:
    def test_corpus_study_serial_equals_parallel(self):
        serial = corpus_study(range(6), fb="2K", iterations=4)
        fanned = corpus_study(range(6), fb="2K", iterations=4, jobs=2)
        assert serial == fanned

    def test_sweep_serial_equals_parallel(self):
        application, clustering = _experiment("MPEG").build()
        sizes = ["1K", "2K", "4K"]
        serial = sweep_fb_sizes(application, clustering, sizes)
        fanned = sweep_fb_sizes(application, clustering, sizes, jobs=2)
        assert serial == fanned

    def test_ablations_serial_equals_parallel(self):
        spec = paper_experiments()[0]
        serial = run_all_ablations(spec)
        fanned = run_all_ablations(spec, jobs=2)
        assert serial == fanned
        assert len(serial) >= 10  # keep(3) + rf(2) + dma(3) + cross(2)


class TestPlanKey:
    def test_identity_free(self):
        """The same workload built twice hashes to the same key."""
        first_app, first_clustering = random_application(7, iterations=4)
        second_app, second_clustering = random_application(7, iterations=4)
        assert first_app is not second_app
        architecture = Architecture.m1("4K")
        options = ScheduleOptions()
        assert plan_key(
            "cds", first_app, first_clustering, architecture, options
        ) == plan_key(
            "cds", second_app, second_clustering, architecture, options
        )

    def test_sensitive_to_every_input(self):
        application, clustering = random_application(7, iterations=4)
        base = plan_key(
            "cds", application, clustering, Architecture.m1("4K"),
            ScheduleOptions(),
        )
        other_app, other_clustering = random_application(8, iterations=4)
        assert base != plan_key(
            "cds", other_app, other_clustering, Architecture.m1("4K"),
            ScheduleOptions(),
        )
        assert base != plan_key(
            "ds", application, clustering, Architecture.m1("4K"),
            ScheduleOptions(),
        )
        assert base != plan_key(
            "cds", application, clustering, Architecture.m1("2K"),
            ScheduleOptions(),
        )
        assert base != plan_key(
            "cds", application, clustering, Architecture.m1("4K"),
            ScheduleOptions(rf_cap=2),
        )


class TestPlanMemo:
    def test_hit_returns_same_plan(self):
        application, clustering = _experiment("MPEG").build()
        architecture = Architecture.m1("4K")
        memo = PlanMemo()
        first = memo.schedule(
            CompleteDataScheduler, application, clustering, architecture
        )
        second = memo.schedule(
            CompleteDataScheduler, application, clustering, architecture
        )
        assert first is second
        assert (memo.misses, memo.hits) == (1, 1)

    def test_rebuilt_workload_hits(self):
        """Content hashing: a structurally equal workload rebuilt from
        its spec reuses the cached plan."""
        target = _experiment("MPEG")
        architecture = Architecture.m1("4K")
        memo = PlanMemo()
        memo.schedule(
            CompleteDataScheduler, *target.build(), architecture
        )
        memo.schedule(
            CompleteDataScheduler, *target.build(), architecture
        )
        assert (memo.misses, memo.hits) == (1, 1)

    def test_distinct_options_miss(self):
        application, clustering = _experiment("MPEG").build()
        architecture = Architecture.m1("4K")
        memo = PlanMemo()
        memo.schedule(
            CompleteDataScheduler, application, clustering, architecture
        )
        memo.schedule(
            CompleteDataScheduler, application, clustering, architecture,
            options=ScheduleOptions(rf_policy="joint"),
        )
        assert (memo.misses, memo.hits) == (2, 0)

    def test_infeasible_not_cached(self):
        application, clustering = _experiment("MPEG").build()
        tiny = Architecture.m1(64)
        memo = PlanMemo()
        for _ in range(2):
            with pytest.raises(InfeasibleScheduleError):
                memo.schedule(
                    CompleteDataScheduler, application, clustering, tiny
                )
        # Both attempts recompute: the failure was never cached.
        assert (memo.misses, memo.hits) == (2, 0)
        assert not memo._plans


class TestJobsValidation:
    def test_negative_jobs_rejected(self):
        # Silently treating jobs=-1 as the serial path hid caller bugs;
        # negative counts are now an explicit error.
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            parallel_map(_square, [1, 2, 3], jobs=-1)

    def test_negative_jobs_rejected_even_for_empty_input(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            parallel_map(_square, [], jobs=-4)

    def test_driver_propagates_the_error(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            run_all_ablations(_experiment("E1"), jobs=-2)


class TestMetricsRollup:
    @pytest.fixture(autouse=True)
    def _metrics_off_around(self):
        from repro.obs.metrics import get_registry, set_metrics_active

        previous = set_metrics_active(False)
        get_registry().reset()
        yield
        set_metrics_active(previous)
        get_registry().reset()

    def test_parallel_workers_roll_up_into_parent_registry(self):
        from repro.obs.metrics import get_registry, set_metrics_active

        set_metrics_active(True)
        items = list(range(6))
        assert parallel_map(_timed_square, items, jobs=2) == \
            [item * item for item in items]
        registry = get_registry()
        assert registry.counters["driver/parallel.items"] == len(items)
        assert registry.counters["driver/parallel.fanouts"] == 1
        assert registry.counters["worker/squares"] == len(items)
        assert registry.timers["worker/square"]["count"] == len(items)

    def test_serial_path_collects_in_process(self):
        from repro.obs.metrics import get_registry, set_metrics_active

        set_metrics_active(True)
        parallel_map(_timed_square, [1, 2], jobs=1)
        registry = get_registry()
        assert registry.counters["worker/squares"] == 2
        assert "driver/parallel.fanouts" not in registry.counters

    def test_results_identical_with_metrics_on_or_off(self):
        from repro.obs.metrics import set_metrics_active

        items = list(range(5))
        off = parallel_map(_timed_square, items, jobs=2)
        set_metrics_active(True)
        on = parallel_map(_timed_square, items, jobs=2)
        assert on == off

    def test_metrics_off_records_nothing(self):
        from repro.obs.metrics import get_registry

        parallel_map(_timed_square, [1, 2, 3], jobs=2)
        assert get_registry().snapshot() == {"counters": {}, "timers": {}}


def _timed_square(value):
    from repro.obs.metrics import inc, time_stage

    with time_stage("square", scope="worker"):
        inc("squares", scope="worker")
        return value * value
