"""Tests for the frame-buffer-size sweep analysis."""

import pytest

from repro.analysis.sweep import render_sweep, sweep_fb_sizes
from repro.arch.params import Architecture


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        # Build inside the class to keep fixtures cheap at module scope.
        from repro.workloads.atr import atr_fi
        application, clustering = atr_fi()
        return sweep_fb_sizes(
            application, clustering, [512, "1K", "2K", "4K"]
        )

    def test_point_per_size(self, points):
        assert [p.fb_words for p in points] == [512, 1024, 2048, 4096]

    def test_infeasible_sizes_flagged_not_raised(self, points):
        assert not points[0].ds_feasible
        assert points[0].rf is None

    def test_rf_monotone(self, points):
        feasible = [p for p in points if p.ds_feasible]
        rf_values = [p.rf for p in feasible]
        assert rf_values == sorted(rf_values)
        assert rf_values[0] >= 1

    def test_cycles_never_increase_materially(self, points):
        feasible = [p for p in points if p.ds_feasible]
        cycles = [p.cds_cycles for p in feasible]
        assert all(b <= a * 1.02 for a, b in zip(cycles, cycles[1:]))

    def test_custom_architecture_factory(self):
        from repro.workloads.atr import atr_fi
        application, clustering = atr_fi()
        seen = []

        def factory(words):
            seen.append(words)
            return Architecture.m1(words)

        sweep_fb_sizes(application, clustering, ["1K"],
                       architecture_factory=factory)
        assert seen == [1024]

    def test_render(self, points):
        text = render_sweep(points, title="demo sweep")
        assert "demo sweep" in text
        assert "infeasible" in text
        assert "1K" in text
