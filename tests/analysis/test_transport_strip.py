"""Decision traces stay out of pickled outcome transport.

``ScheduleOptions(decision_trace=True)`` attaches a
:class:`~repro.obs.events.DecisionTrace` to the schedule — process-local
observability data that is ``compare=False`` in equality and can run to
megabytes.  ``SchedulerOutcome.for_transport()`` strips it before the
outcome crosses a pickling boundary (worker pools, the persistent
cache): the stripped outcome must compare equal to the original and
pickle strictly smaller, and untraced outcomes — every driver default —
must pass through untouched.
"""

import pickle

from repro.analysis.compare import run_scheduler
from repro.arch.params import Architecture
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.spec import paper_experiments


def _outcome(*, traced: bool):
    spec = paper_experiments()[0]
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    options = ScheduleOptions(decision_trace=True) if traced else None
    scheduler = CompleteDataScheduler(architecture, options=options)
    return run_scheduler(scheduler, application, clustering, architecture)


def test_traced_outcome_strips_smaller_and_equal():
    outcome = _outcome(traced=True)
    assert outcome.schedule.decisions is not None
    stripped = outcome.for_transport()
    assert stripped is not outcome
    assert stripped.schedule.decisions is None
    # The trace is compare=False: identical outcomes either way.
    assert stripped == outcome
    assert stripped.schedule == outcome.schedule
    assert len(pickle.dumps(stripped)) < len(pickle.dumps(outcome))


def test_untraced_outcome_passes_through():
    outcome = _outcome(traced=False)
    assert outcome.schedule.decisions is None
    assert outcome.for_transport() is outcome


def test_schedule_without_decisions_identity():
    outcome = _outcome(traced=False)
    schedule = outcome.schedule
    assert schedule.without_decisions() is schedule
    traced = _outcome(traced=True).schedule
    stripped = traced.without_decisions()
    assert stripped is not traced
    assert stripped.decisions is None
    assert stripped == traced
