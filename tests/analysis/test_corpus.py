"""Unit tests for the corpus robustness study."""

import pytest

from repro.analysis.corpus import CorpusStats, corpus_study


class TestCorpusStudy:
    @pytest.fixture(scope="class")
    def stats(self):
        return corpus_study(list(range(12)), fb="4K", iterations=3)

    def test_accounting_adds_up(self, stats):
        assert stats.feasible + stats.infeasible == stats.seeds_total
        assert len(stats.cds_improvements_pct) == stats.feasible

    def test_no_regressions(self, stats):
        assert stats.cds_regressions_vs_ds == 0

    def test_stats_derived(self, stats):
        if stats.cds_improvements_pct:
            assert stats.min_cds_pct <= stats.median_cds_pct
            assert stats.mean_cds_pct > 0

    def test_summary_renders(self, stats):
        text = stats.summary()
        assert "corpus" in text
        assert "regressions: 0" in text

    def test_empty_corpus(self):
        stats = CorpusStats(seeds_total=0)
        assert stats.mean_cds_pct is None
        assert stats.median_cds_pct is None
        assert stats.min_cds_pct is None
        assert "corpus: 0" in stats.summary()


class TestExperimentSpec:
    def test_fb_words_parses(self):
        from repro.workloads.spec import paper_experiments
        for spec in paper_experiments():
            assert spec.fb_words > 0
            assert spec.fb_words % 2 == 0

    def test_ids_unique(self):
        from repro.workloads.spec import paper_experiments
        ids = [spec.id for spec in paper_experiments()]
        assert len(ids) == len(set(ids))
