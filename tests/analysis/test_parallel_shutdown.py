"""Worker-pool teardown regression tests.

The driver bug: an interrupt (KeyboardInterrupt) landing while
``Executor.map`` is still submitting left every already-queued item
running to completion under the executor's ``shutdown(wait=True)``
exit — a Ctrl-C'd campaign kept burning CPU for its whole remaining
workload.  ``_drain_pool`` shuts the pool down with
``cancel_futures=True`` on any failure, so queued work is dropped and
the workers are reaped promptly.
"""

import concurrent.futures
import pathlib
import time

import pytest

from repro.analysis.parallel import WorkerPool, _drain_pool, parallel_map
from concurrent.futures import ProcessPoolExecutor


def _mark_and_sleep(item):
    directory, index = item
    (pathlib.Path(directory) / f"ran-{index}").write_text("x")
    time.sleep(0.2)
    return index


def _interrupting_items(directory, count):
    """Yields *count* work items, then simulates a Ctrl-C arriving
    while the executor is still submitting."""
    for index in range(count):
        yield (directory, index)
    raise KeyboardInterrupt


def test_drain_pool_interrupt_does_not_run_queued_items(tmp_path):
    """A KeyboardInterrupt during submission must not let the whole
    queued workload execute (pre-fix, all 30 items ran to completion
    before the interrupt surfaced)."""
    pool = ProcessPoolExecutor(max_workers=2)
    started = time.perf_counter()
    with pytest.raises(KeyboardInterrupt):
        _drain_pool(
            pool, _mark_and_sleep,
            _interrupting_items(str(tmp_path), 30), 1,
        )
    elapsed = time.perf_counter() - started
    executed = len(list(tmp_path.glob("ran-*")))
    # 30 items x 0.2s over 2 workers is 3s; cancelling the queue keeps
    # only the handful already picked up by the workers.
    assert executed < 10, f"{executed} queued items still executed"
    assert elapsed < 2.5, f"teardown took {elapsed:.2f}s"


def test_drain_pool_worker_error_reaps_pool(tmp_path):
    pool = ProcessPoolExecutor(max_workers=2)
    with pytest.raises(ZeroDivisionError):
        _drain_pool(pool, _divide, [1, 0, 1, 1], 1)
    # The pool is shut down: new submissions are refused.
    with pytest.raises(RuntimeError):
        pool.submit(_divide, 1)


def _divide(value):
    return 1 // value


def _sleep_return(seconds):
    time.sleep(seconds)
    return seconds


class TestWorkerPool:
    def test_thread_map_returns_results(self):
        with WorkerPool(jobs=2, mode="thread") as pool:
            assert pool.map(_divide, [1, 1, 1]) == [1, 1, 1]

    def test_map_error_leaves_pool_usable(self):
        with WorkerPool(jobs=2, mode="thread") as pool:
            with pytest.raises(ZeroDivisionError):
                pool.map(_divide, [1, 0, 1])
            assert pool.submit(_divide, 1).result() == 1

    def test_close_cancels_queued_work(self):
        pool = WorkerPool(jobs=1, mode="thread")
        futures = [pool.submit(_sleep_return, 0.2) for _ in range(20)]
        time.sleep(0.05)
        started = time.perf_counter()
        pool.close()
        elapsed = time.perf_counter() - started
        cancelled = sum(1 for future in futures if future.cancelled())
        assert cancelled >= 10, f"only {cancelled} futures cancelled"
        assert elapsed < 2.0, f"close took {elapsed:.2f}s"

    def test_process_mode_roundtrip(self):
        with WorkerPool(jobs=2, mode="process") as pool:
            assert pool.map(_divide, [1, 1]) == [1, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=-1)
        with pytest.raises(ValueError):
            WorkerPool(mode="fiber")

    def test_default_jobs(self):
        pool = WorkerPool(jobs=0, mode="thread")
        try:
            assert pool.jobs >= 1
        finally:
            pool.close()


def test_parallel_map_still_matches_serial():
    """The `_drain_pool` refactor does not change results."""
    values = list(range(8))
    assert parallel_map(_divide, [1] * 4, jobs=2) == [1, 1, 1, 1]
    assert parallel_map(_square, values, jobs=2) == [
        value * value for value in values
    ]


def _square(value):
    return value * value


def test_futures_module_supports_cancel_futures():
    """`shutdown(cancel_futures=...)` exists on every supported
    Python (3.9+); guard against silently losing the fix."""
    import inspect

    signature = inspect.signature(
        concurrent.futures.Executor.shutdown
    )
    assert "cancel_futures" in signature.parameters
