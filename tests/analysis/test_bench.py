"""Unit tests for the ``repro bench`` comparison and rendering logic.

``run_bench`` itself is exercised by the CI quick-mode job (and takes
seconds); here we pin down the regression-gate semantics the job relies
on, with synthetic payloads.
"""

from repro.analysis.bench import (
    PRE_PR_BASELINE,
    STAGES,
    compare_bench,
    render_bench,
)


def _payload(stages=None, scalability=None):
    return {
        "schema": 2,
        "quick": True,
        "stages": stages or {},
        "scalability": scalability or {},
        "baseline": PRE_PR_BASELINE,
        "baseline_source": "pre-overhaul",
        "speedup_vs_baseline": {},
    }


class TestCompareBench:
    def test_no_regression_within_limit(self):
        baseline = _payload(stages={"cds": 0.010}, scalability={"corpus": 0.2})
        current = _payload(stages={"cds": 0.012}, scalability={"corpus": 0.24})
        assert compare_bench(current, baseline, max_regression_pct=25.0) == []

    def test_regression_detected_past_limit(self):
        baseline = _payload(stages={"cds": 0.010})
        current = _payload(stages={"cds": 0.020})
        problems = compare_bench(current, baseline, max_regression_pct=25.0)
        assert len(problems) == 1
        assert "stages.cds" in problems[0]
        assert "100.0%" in problems[0]

    def test_missing_keys_skipped(self):
        baseline = _payload(stages={"cds": 0.010, "lint": 0.001})
        current = _payload(stages={"cds": 0.010})
        assert compare_bench(current, baseline, max_regression_pct=25.0) == []

    def test_improvements_never_flagged(self):
        baseline = _payload(scalability={"cds_large": 0.013})
        current = _payload(scalability={"cds_large": 0.001})
        assert compare_bench(current, baseline, max_regression_pct=25.0) == []


class TestRenderBench:
    def test_lists_stages_and_speedups(self):
        payload = _payload(
            stages={stage: 0.001 for stage in STAGES},
            scalability={"cds_large": 0.0026, "corpus": 0.17},
        )
        payload["speedup_vs_baseline"] = {"cds_large": 5.0, "corpus": 3.2}
        text = render_bench(payload)
        for stage in STAGES:
            assert stage in text
        assert "vs pre-overhaul" in text
        assert "5.00x" in text


def test_committed_baseline_shape():
    """The embedded pre-overhaul baseline covers its era's stage keys.

    Stages introduced after the pre-overhaul snapshot
    (``simulate_traced``) are legitimately absent — the render and the
    gate both skip keys missing on one side.
    """
    assert set(PRE_PR_BASELINE["stages"]) == set(STAGES) - {
        "simulate_traced", "codegen_templated", "verify_fast"
    }
    assert set(PRE_PR_BASELINE["scalability"]) == {"cds_large", "corpus"}


class TestMetricsSection:
    def test_render_shows_rollup_when_metrics_present(self):
        payload = _payload(stages={"cds": 0.001})
        payload["metrics"] = {
            "counters": {"driver/parallel.items": 20},
            "timers": {"pipeline.cds/schedule":
                       {"total_s": 0.5, "count": 20, "max_s": 0.1}},
        }
        text = render_bench(payload)
        assert "metrics rollup:" in text
        assert "pipeline.cds/schedule" in text
        assert "driver/parallel.items" in text

    def test_render_omits_rollup_when_absent_or_empty(self):
        assert "metrics rollup" not in render_bench(_payload())
        empty = _payload()
        empty["metrics"] = {"counters": {}, "timers": {}}
        assert "metrics rollup" not in render_bench(empty)

    def test_compare_bench_ignores_the_metrics_section(self):
        baseline = _payload(stages={"cds": 0.010})
        current = _payload(stages={"cds": 0.010})
        current["metrics"] = {"counters": {"n": 1}, "timers": {}}
        assert compare_bench(current, baseline, max_regression_pct=25.0) == []
