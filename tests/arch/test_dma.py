"""Tests for the serialising DMA channel."""

import pytest

from repro.arch.dma import DmaChannel, TransferKind
from repro.arch.params import TimingModel
from repro.errors import SimulationError


def _channel():
    return DmaChannel(TimingModel(
        data_word_cycles=2, context_word_cycles=3, dma_setup_cycles=10
    ))


class TestDmaChannel:
    def test_single_transfer_timing(self):
        dma = _channel()
        start, finish = dma.request(TransferKind.DATA_LOAD, 100, 0, "ld")
        assert start == 0
        assert finish == 10 + 200

    def test_context_timing_uses_context_cost(self):
        dma = _channel()
        _, finish = dma.request(TransferKind.CONTEXT_LOAD, 100, 0, "ctx")
        assert finish == 10 + 300

    def test_serialisation(self):
        dma = _channel()
        _, first_finish = dma.request(TransferKind.DATA_LOAD, 10, 0, "a")
        second_start, _ = dma.request(TransferKind.DATA_LOAD, 10, 0, "b")
        assert second_start == first_finish

    def test_earliest_start_respected(self):
        dma = _channel()
        start, _ = dma.request(TransferKind.DATA_STORE, 10, 500, "st")
        assert start == 500

    def test_idle_gap_when_earliest_late(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 10, 0, "a")
        start, _ = dma.request(TransferKind.DATA_LOAD, 10, 10_000, "b")
        assert start == 10_000

    def test_zero_word_transfer_is_free(self):
        dma = _channel()
        start, finish = dma.request(TransferKind.DATA_LOAD, 0, 5, "empty")
        assert start == finish
        assert dma.transfers == []

    def test_negative_words_rejected(self):
        with pytest.raises(SimulationError):
            _channel().request(TransferKind.DATA_LOAD, -1, 0, "bad")

    def test_negative_earliest_rejected(self):
        with pytest.raises(SimulationError):
            _channel().request(TransferKind.DATA_LOAD, 1, -1, "bad")

    def test_statistics(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 100, 0, "a")
        dma.request(TransferKind.DATA_LOAD, 50, 0, "b")
        dma.request(TransferKind.DATA_STORE, 30, 0, "c")
        dma.request(TransferKind.CONTEXT_LOAD, 20, 0, "d")
        assert dma.words_moved(TransferKind.DATA_LOAD) == 150
        assert dma.words_moved(TransferKind.DATA_STORE) == 30
        assert dma.words_moved(TransferKind.CONTEXT_LOAD) == 20
        assert dma.count(TransferKind.DATA_LOAD) == 2
        assert dma.cycles_busy() == sum(t.cycles for t in dma.transfers)
        assert dma.by_kind()[TransferKind.DATA_LOAD] == 150

    def test_reset(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 100, 0, "a")
        dma.reset()
        assert dma.busy_until == 0
        assert dma.transfers == []
