"""Tests for the serialising DMA channel."""

import pytest

from repro.arch.dma import DmaChannel, TransferKind
from repro.arch.params import TimingModel
from repro.errors import SimulationError


def _channel():
    return DmaChannel(TimingModel(
        data_word_cycles=2, context_word_cycles=3, dma_setup_cycles=10
    ))


class TestDmaChannel:
    def test_single_transfer_timing(self):
        dma = _channel()
        start, finish = dma.request(TransferKind.DATA_LOAD, 100, 0, "ld")
        assert start == 0
        assert finish == 10 + 200

    def test_context_timing_uses_context_cost(self):
        dma = _channel()
        _, finish = dma.request(TransferKind.CONTEXT_LOAD, 100, 0, "ctx")
        assert finish == 10 + 300

    def test_serialisation(self):
        dma = _channel()
        _, first_finish = dma.request(TransferKind.DATA_LOAD, 10, 0, "a")
        second_start, _ = dma.request(TransferKind.DATA_LOAD, 10, 0, "b")
        assert second_start == first_finish

    def test_earliest_start_respected(self):
        dma = _channel()
        start, _ = dma.request(TransferKind.DATA_STORE, 10, 500, "st")
        assert start == 500

    def test_idle_gap_when_earliest_late(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 10, 0, "a")
        start, _ = dma.request(TransferKind.DATA_LOAD, 10, 10_000, "b")
        assert start == 10_000

    def test_zero_word_transfer_is_free(self):
        dma = _channel()
        start, finish = dma.request(TransferKind.DATA_LOAD, 0, 5, "empty")
        assert start == finish
        assert dma.transfers == []

    def test_negative_words_rejected(self):
        with pytest.raises(SimulationError):
            _channel().request(TransferKind.DATA_LOAD, -1, 0, "bad")

    def test_negative_earliest_rejected(self):
        with pytest.raises(SimulationError):
            _channel().request(TransferKind.DATA_LOAD, 1, -1, "bad")

    def test_statistics(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 100, 0, "a")
        dma.request(TransferKind.DATA_LOAD, 50, 0, "b")
        dma.request(TransferKind.DATA_STORE, 30, 0, "c")
        dma.request(TransferKind.CONTEXT_LOAD, 20, 0, "d")
        assert dma.words_moved(TransferKind.DATA_LOAD) == 150
        assert dma.words_moved(TransferKind.DATA_STORE) == 30
        assert dma.words_moved(TransferKind.CONTEXT_LOAD) == 20
        assert dma.count(TransferKind.DATA_LOAD) == 2
        assert dma.cycles_busy() == sum(t.cycles for t in dma.transfers)
        assert dma.by_kind()[TransferKind.DATA_LOAD] == 150

    def test_reset(self):
        dma = _channel()
        dma.request(TransferKind.DATA_LOAD, 100, 0, "a")
        dma.reset()
        assert dma.busy_until == 0
        assert dma.transfers == []


class TestRequestBlock:
    def test_equivalent_to_consecutive_requests(self):
        traced = _channel()
        for _ in range(3):
            traced.request(TransferKind.DATA_LOAD, 10, 0, "x")
        block = _channel()
        duration = sum(t.cycles for t in traced.transfers)
        start, finish = block.request_block(
            TransferKind.DATA_LOAD, 30, duration, 3, 0
        )
        assert (start, finish) == (traced.transfers[0].start,
                                   traced.transfers[-1].finish)
        assert block.words_moved(TransferKind.DATA_LOAD) == \
            traced.words_moved(TransferKind.DATA_LOAD)
        assert block.count(TransferKind.DATA_LOAD) == \
            traced.count(TransferKind.DATA_LOAD)
        assert block.cycles_busy() == traced.cycles_busy()
        assert block.busy_until == traced.busy_until

    def test_zero_count_or_words_is_free(self):
        dma = _channel()
        for words, count in ((0, 3), (30, 0)):
            start, finish = dma.request_block(
                TransferKind.DATA_LOAD, words, 60, count, 5
            )
            assert start == finish == 5
        assert dma.cycles_busy() == 0

    def test_negative_words_rejected(self):
        with pytest.raises(SimulationError, match="negative transfer size"):
            _channel().request_block(TransferKind.DATA_LOAD, -1, 10, 1, 0)

    def test_negative_earliest_start_rejected(self):
        with pytest.raises(SimulationError, match="negative earliest_start"):
            _channel().request_block(TransferKind.DATA_LOAD, 10, 10, 1, -1)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError, match="negative block duration"):
            _channel().request_block(TransferKind.DATA_LOAD, 10, -1, 1, 0)

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError, match="negative transfer count"):
            _channel().request_block(TransferKind.DATA_LOAD, 10, 10, -1, 0)

    def test_validation_matches_request_for_shared_arguments(self):
        # The fast path and the traced path must agree on what they
        # reject: same arguments, same verdict.
        for words, earliest in ((-5, 0), (5, -2)):
            with pytest.raises(SimulationError):
                _channel().request(TransferKind.DATA_LOAD, words, earliest)
            with pytest.raises(SimulationError):
                _channel().request_block(
                    TransferKind.DATA_LOAD, words, 10, 1, earliest
                )
