"""Tests for architecture descriptions and the timing model."""

import pytest

from repro.arch.params import Architecture, TimingModel
from repro.errors import ArchitectureError


class TestTimingModel:
    def test_defaults_positive(self):
        timing = TimingModel()
        assert timing.data_word_cycles > 0
        assert timing.context_word_cycles > 0

    def test_data_transfer_cycles_linear(self):
        timing = TimingModel(data_word_cycles=3, dma_setup_cycles=10)
        assert timing.data_transfer_cycles(100) == 10 + 300

    def test_zero_words_is_free(self):
        assert TimingModel().data_transfer_cycles(0) == 0
        assert TimingModel().context_transfer_cycles(0) == 0

    def test_context_transfer_cycles(self):
        timing = TimingModel(context_word_cycles=4, dma_setup_cycles=2)
        assert timing.context_transfer_cycles(10) == 2 + 40

    def test_negative_words_rejected(self):
        with pytest.raises(ArchitectureError):
            TimingModel().data_transfer_cycles(-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ArchitectureError):
            TimingModel(data_word_cycles=0)
        with pytest.raises(ArchitectureError):
            TimingModel(context_word_cycles=-1)
        with pytest.raises(ArchitectureError):
            TimingModel(dma_setup_cycles=-1)


class TestArchitecture:
    def test_m1_preset(self):
        arch = Architecture.m1("2K")
        assert arch.fb_set_words == 2048
        assert arch.rc_rows == 8 and arch.rc_cols == 8
        assert arch.fb_sets == 2
        assert arch.context_blocks == 2
        assert arch.rc_cells == 64

    def test_m1_name_reflects_fb(self):
        assert "2K" in Architecture.m1("2K").name

    def test_with_fb_set_words(self):
        arch = Architecture.m1("2K").with_fb_set_words("8K")
        assert arch.fb_set_words == 8192
        assert "8K" in arch.name

    def test_total_fb_words(self):
        assert Architecture.m1("1K").total_fb_words == 2048

    def test_size_strings_accepted(self):
        assert Architecture.m1("0.5K").fb_set_words == 512

    def test_str(self):
        text = str(Architecture.m1("2K"))
        assert "8x8" in text and "2K" in text

    def test_zero_fb_rejected(self):
        with pytest.raises(Exception):
            Architecture(name="x", fb_set_words=0)

    def test_single_fb_set_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(name="x", fb_set_words=1024, fb_sets=1)

    def test_bad_rc_dims_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(name="x", fb_set_words=1024, rc_rows=0)

    def test_bad_context_blocks_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(name="x", fb_set_words=1024, context_blocks=3)
