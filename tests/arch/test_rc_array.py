"""Tests for the functional RC-array model."""

import numpy as np
import pytest

from repro.arch.rc_array import ContextProgram, MacroOp, RCArray
from repro.errors import SimulationError


def _program(*ops, inputs=("a", "b"), outputs=("y",)):
    return ContextProgram(name="t", inputs=inputs, outputs=outputs, ops=ops)


class TestMacroOp:
    def test_arity_checked(self):
        with pytest.raises(SimulationError, match="sources"):
            MacroOp("add", "y", ("a",))

    def test_unknown_op_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            MacroOp("frobnicate", "y", ("a",))

    def test_imm_required(self):
        with pytest.raises(SimulationError, match="immediate"):
            MacroOp("shr", "y", ("a",))


class TestContextProgram:
    def test_undefined_register_rejected(self):
        with pytest.raises(SimulationError, match="undefined register"):
            _program(MacroOp("add", "y", ("a", "ghost")))

    def test_unwritten_output_rejected(self):
        with pytest.raises(SimulationError, match="never written"):
            _program(MacroOp("add", "x", ("a", "b")))


class TestExecution:
    def test_elementwise_ops(self):
        rc = RCArray()
        program = ContextProgram(
            name="mix", inputs=("a", "b"), outputs=("y",),
            ops=(
                MacroOp("add", "s", ("a", "b")),
                MacroOp("muli", "m", ("s",), imm=3),
                MacroOp("shr", "y", ("m",), imm=1),
            ),
        )
        out = rc.execute(program, {"a": np.array([2, 4]), "b": np.array([1, 1])})
        assert out["y"].tolist() == [4, 7]  # ((a+b)*3)>>1

    def test_unary_and_minmax(self):
        rc = RCArray()
        program = ContextProgram(
            name="m", inputs=("a", "b"), outputs=("lo", "hi", "n", "ab"),
            ops=(
                MacroOp("min", "lo", ("a", "b")),
                MacroOp("max", "hi", ("a", "b")),
                MacroOp("neg", "n", ("a",)),
                MacroOp("abs", "ab", ("n",)),
            ),
        )
        out = rc.execute(program, {"a": np.array([3, -5]), "b": np.array([1, 7])})
        assert out["lo"].tolist() == [1, -5]
        assert out["hi"].tolist() == [3, 7]
        assert out["ab"].tolist() == [3, 5]

    def test_clip_and_const(self):
        rc = RCArray()
        program = ContextProgram(
            name="c", inputs=("a",), outputs=("y", "k"),
            ops=(
                MacroOp("clip", "y", ("a",), imm=4),
                MacroOp("const", "k", (), imm=42),
            ),
        )
        out = rc.execute(program, {"a": np.array([-9, 2, 9])})
        assert out["y"].tolist() == [-4, 2, 4]
        assert int(out["k"]) == 42

    def test_shift_elems(self):
        rc = RCArray()
        program = ContextProgram(
            name="s", inputs=("a",), outputs=("r", "l"),
            ops=(
                MacroOp("shift_elems", "r", ("a",), imm=1),
                MacroOp("shift_elems", "l", ("a",), imm=-1),
            ),
        )
        out = rc.execute(program, {"a": np.array([1, 2, 3])})
        assert out["r"].tolist() == [0, 1, 2]
        assert out["l"].tolist() == [2, 3, 0]

    def test_matmul_and_transpose(self):
        rc = RCArray()
        program = ContextProgram(
            name="mm", inputs=("a", "b"), outputs=("y", "t", "yt"),
            ops=(
                MacroOp("matmul", "y", ("a", "b")),
                MacroOp("transpose", "t", ("a",)),
                MacroOp("matmul_t", "yt", ("a", "b")),
            ),
        )
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[5, 6], [7, 8]])
        out = rc.execute(program, {"a": a, "b": b})
        assert np.array_equal(out["y"], a @ b)
        assert np.array_equal(out["t"], a.T)
        assert np.array_equal(out["yt"], a @ b.T)

    def test_reduce_sum(self):
        rc = RCArray()
        program = ContextProgram(
            name="r", inputs=("a",), outputs=("s",),
            ops=(MacroOp("reduce_sum", "s", ("a",)),),
        )
        out = rc.execute(program, {"a": np.arange(10)})
        assert int(out["s"]) == 45

    def test_missing_operand_rejected(self):
        rc = RCArray()
        program = _program(MacroOp("add", "y", ("a", "b")))
        with pytest.raises(SimulationError, match="missing operand"):
            rc.execute(program, {"a": np.array([1])})

    def test_shape_mismatch_reported(self):
        rc = RCArray()
        program = _program(MacroOp("matmul", "y", ("a", "b")))
        with pytest.raises(SimulationError, match="shape"):
            rc.execute(program, {"a": np.ones((2, 3)), "b": np.ones((2, 3))})


class TestCycleModel:
    def test_cycles_scale_with_elements(self):
        rc = RCArray()
        program = _program(MacroOp("add", "y", ("a", "b")))
        small = rc.estimate_cycles(
            program, {"a": np.ones(64), "b": np.ones(64)}
        )
        large = rc.estimate_cycles(
            program, {"a": np.ones(640), "b": np.ones(640)}
        )
        assert large > small

    def test_estimate_does_not_accumulate(self):
        rc = RCArray()
        program = _program(MacroOp("add", "y", ("a", "b")))
        rc.estimate_cycles(program, {"a": np.ones(64), "b": np.ones(64)})
        assert rc.cycles_executed == 0
        assert rc.macro_ops_executed == 0

    def test_execute_accumulates(self):
        rc = RCArray()
        program = _program(MacroOp("add", "y", ("a", "b")))
        rc.execute(program, {"a": np.ones(64), "b": np.ones(64)})
        assert rc.macro_ops_executed == 1
        assert rc.cycles_executed > 0
        rc.reset_counters()
        assert rc.cycles_executed == 0

    def test_bigger_array_is_faster(self):
        program = _program(MacroOp("add", "y", ("a", "b")))
        operands = {"a": np.ones(1024), "b": np.ones(1024)}
        small = RCArray(4, 4).estimate_cycles(program, operands)
        large = RCArray(16, 16).estimate_cycles(program, operands)
        assert large < small

    def test_invalid_dims_rejected(self):
        with pytest.raises(SimulationError):
            RCArray(0, 8)
