"""Tests for the external memory model."""

import numpy as np
import pytest

from repro.arch.external_memory import ExternalMemory
from repro.errors import SimulationError


class TestAccountingMode:
    def test_put_and_exists(self):
        mem = ExternalMemory()
        mem.put("d", 0, size=64)
        assert mem.exists("d", 0)
        assert not mem.exists("d", 1)

    def test_read_counts_traffic(self):
        mem = ExternalMemory()
        mem.put("d", 0, size=64)
        assert mem.read("d", 0, 64) is None
        assert mem.words_read == 64

    def test_write_counts_traffic(self):
        mem = ExternalMemory()
        mem.write("r", 0, 32)
        assert mem.words_written == 32
        assert mem.exists("r", 0)

    def test_read_missing_rejected(self):
        with pytest.raises(SimulationError, match="not present"):
            ExternalMemory().read("ghost", 0, 8)

    def test_put_needs_values_or_size(self):
        with pytest.raises(SimulationError):
            ExternalMemory().put("d", 0)

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            ExternalMemory().put("d", 0, size=0)
        with pytest.raises(SimulationError):
            ExternalMemory().write("d", 0, 0)


class TestFunctionalMode:
    def test_roundtrip(self):
        mem = ExternalMemory()
        mem.put("d", 3, np.arange(8))
        values = mem.read("d", 3, 8)
        assert values.tolist() == list(range(8))

    def test_read_returns_copy(self):
        mem = ExternalMemory()
        mem.put("d", 0, np.arange(4))
        values = mem.read("d", 0, 4)
        values[0] = 99
        assert mem.get("d", 0)[0] == 0

    def test_size_mismatch_on_read(self):
        mem = ExternalMemory()
        mem.put("d", 0, np.arange(4))
        with pytest.raises(SimulationError, match="requested"):
            mem.read("d", 0, 8)

    def test_size_mismatch_on_write(self):
        with pytest.raises(SimulationError, match="declared"):
            ExternalMemory().write("d", 0, 8, values=np.arange(4))

    def test_get_does_not_count(self):
        mem = ExternalMemory()
        mem.put("d", 0, np.arange(4))
        mem.get("d", 0)
        assert mem.words_read == 0

    def test_instances_of(self):
        mem = ExternalMemory()
        mem.put("d", 2, size=8)
        mem.put("d", 0, size=8)
        mem.put("e", 1, size=8)
        assert mem.instances_of("d") == (0, 2)

    def test_clear_and_counters(self):
        mem = ExternalMemory()
        mem.put("d", 0, size=8)
        mem.read("d", 0, 8)
        mem.reset_counters()
        assert mem.words_read == 0
        mem.clear()
        assert not mem.exists("d", 0)
