"""Tests for the frame-buffer region model."""

import numpy as np
import pytest

from repro.arch.frame_buffer import Extent, FrameBuffer, FrameBufferSet
from repro.errors import AllocationError, CapacityError


class TestExtent:
    def test_end(self):
        assert Extent(10, 5).end == 15

    def test_overlap_detection(self):
        assert Extent(0, 10).overlaps(Extent(9, 5))
        assert not Extent(0, 10).overlaps(Extent(10, 5))
        assert Extent(5, 1).overlaps(Extent(0, 10))

    def test_invalid_rejected(self):
        with pytest.raises(AllocationError):
            Extent(-1, 5)
        with pytest.raises(AllocationError):
            Extent(0, 0)


class TestFrameBufferSet:
    def test_bind_and_release(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 100)])
        assert fb.is_bound("x", 0)
        assert fb.occupied_words == 100
        assert fb.free_words == 924
        fb.release("x", 0)
        assert not fb.is_bound("x", 0)
        assert fb.occupied_words == 0

    def test_overlap_rejected(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 100)])
        with pytest.raises(AllocationError, match="overlaps"):
            fb.bind("y", 0, [Extent(50, 100)])

    def test_duplicate_bind_rejected(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 100)])
        with pytest.raises(AllocationError, match="already bound"):
            fb.bind("x", 0, [Extent(200, 100)])

    def test_instances_are_distinct(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 100)])
        fb.bind("x", 1, [Extent(100, 100)])
        assert fb.is_bound("x", 0) and fb.is_bound("x", 1)

    def test_out_of_range_rejected(self):
        fb = FrameBufferSet(128)
        with pytest.raises(AllocationError, match="exceeds capacity"):
            fb.bind("x", 0, [Extent(100, 100)])

    def test_release_unbound_rejected(self):
        with pytest.raises(AllocationError, match="not bound"):
            FrameBufferSet(128).release("ghost", 0)

    def test_empty_extents_rejected(self):
        with pytest.raises(AllocationError):
            FrameBufferSet(128).bind("x", 0, [])

    def test_split_region(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 50), Extent(100, 50)])
        assert fb.occupied_words == 100

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            FrameBufferSet(0)

    def test_clear(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 100)])
        fb.clear()
        assert fb.live_regions() == ()


class TestFunctionalStorage:
    def test_write_read_roundtrip(self):
        fb = FrameBufferSet(1024, functional=True)
        fb.bind("x", 0, [Extent(10, 4)])
        fb.write("x", 0, np.array([1, 2, 3, 4]))
        assert fb.read("x", 0).tolist() == [1, 2, 3, 4]

    def test_split_region_roundtrip(self):
        fb = FrameBufferSet(1024, functional=True)
        fb.bind("x", 0, [Extent(0, 2), Extent(100, 2)])
        fb.write("x", 0, np.array([7, 8, 9, 10]))
        assert fb.read("x", 0).tolist() == [7, 8, 9, 10]

    def test_size_mismatch_rejected(self):
        fb = FrameBufferSet(1024, functional=True)
        fb.bind("x", 0, [Extent(0, 4)])
        with pytest.raises(AllocationError, match="words"):
            fb.write("x", 0, np.array([1, 2]))

    def test_non_functional_write_rejected(self):
        fb = FrameBufferSet(1024)
        fb.bind("x", 0, [Extent(0, 4)])
        with pytest.raises(AllocationError, match="functional"):
            fb.write("x", 0, np.array([1, 2, 3, 4]))


class TestFrameBuffer:
    def test_two_sets(self):
        fb = FrameBuffer(512)
        assert fb[0].set_index == 0
        assert fb[1].set_index == 1
        assert fb.set_words == 512

    def test_sets_are_independent(self):
        fb = FrameBuffer(512)
        fb[0].bind("x", 0, [Extent(0, 100)])
        fb[1].bind("x", 0, [Extent(0, 100)])  # same name, other set: fine
        assert fb[0].occupied_words == fb[1].occupied_words == 100

    def test_clear_clears_both(self):
        fb = FrameBuffer(512)
        fb[0].bind("x", 0, [Extent(0, 100)])
        fb.clear()
        assert fb[0].occupied_words == 0
