"""Tests for the two-block context memory."""

import pytest

from repro.arch.context_memory import ContextMemory
from repro.errors import CapacityError, SimulationError


class TestContextMemory:
    def test_load_and_residency(self):
        cm = ContextMemory(512)
        cm.load("k1", 100, block=0)
        assert cm.is_resident("k1")
        assert cm.is_resident("k1", block=0)
        assert not cm.is_resident("k1", block=1)
        assert cm.used_words(0) == 100
        assert cm.free_words(0) == 412

    def test_two_blocks_independent(self):
        cm = ContextMemory(512)
        cm.load("a", 400, block=0)
        cm.load("b", 400, block=1)
        assert cm.used_words(0) == cm.used_words(1) == 400

    def test_block_overflow_rejected(self):
        cm = ContextMemory(512)
        cm.load("a", 400, block=0)
        with pytest.raises(SimulationError, match="free words"):
            cm.load("b", 200, block=0)

    def test_oversized_kernel_rejected(self):
        cm = ContextMemory(512)
        with pytest.raises(CapacityError, match="holds"):
            cm.load("huge", 513, block=0)

    def test_double_load_rejected(self):
        cm = ContextMemory(512)
        cm.load("a", 100, block=0)
        with pytest.raises(SimulationError, match="already resident"):
            cm.load("a", 100, block=0)

    def test_evict_block(self):
        cm = ContextMemory(512)
        cm.load("a", 400, block=0)
        cm.evict_block(0)
        assert cm.used_words(0) == 0
        cm.load("b", 400, block=0)  # now fits

    def test_counters(self):
        cm = ContextMemory(512)
        cm.load("a", 100, block=0)
        cm.load("b", 50, block=1)
        assert cm.loads_performed == 2
        assert cm.words_loaded == 150
        cm.reset_counters()
        assert cm.loads_performed == 0

    def test_clear_preserves_counters(self):
        cm = ContextMemory(512)
        cm.load("a", 100, block=0)
        cm.clear()
        assert cm.used_words(0) == 0
        assert cm.loads_performed == 1

    def test_resident_kernels(self):
        cm = ContextMemory(512)
        cm.load("a", 10, block=0)
        cm.load("b", 10, block=0)
        assert cm.resident_kernels(0) == ("a", "b")

    def test_invalid_construction(self):
        with pytest.raises(CapacityError):
            ContextMemory(0)
        with pytest.raises(CapacityError):
            ContextMemory(512, blocks=1)

    def test_zero_word_kernel_rejected(self):
        with pytest.raises(CapacityError):
            ContextMemory(512).load("a", 0, block=0)
