"""Tests of the zipf-skewed load generator and its smoke gate."""

import collections
import tempfile

from repro.service.loadgen import (
    build_corpus,
    check_loadgen,
    render_loadgen,
    run_loadgen,
    zipf_indices,
)


def test_zipf_indices_deterministic_and_in_range():
    first = zipf_indices(500, 16, skew=1.1, seed=7)
    second = zipf_indices(500, 16, skew=1.1, seed=7)
    assert first == second
    assert all(0 <= index < 16 for index in first)
    assert zipf_indices(500, 16, skew=1.1, seed=8) != first


def test_zipf_indices_are_skewed():
    counts = collections.Counter(zipf_indices(5000, 16, skew=1.2, seed=0))
    # Rank 0 must dominate the tail by a wide margin, and the head
    # must not be the whole distribution.
    assert counts[0] > 3 * counts[15]
    assert counts[0] < 5000
    assert len(counts) == 16


def test_build_corpus_deterministic_and_distinct():
    first = build_corpus(4, seed=3)
    second = build_corpus(4, seed=3)
    assert first == second
    names = [body["workload"]["name"] for body in first]
    assert len(set(names)) == 4
    for body in first:
        assert body["trace"] is False
        assert body["scheduler"] == "cds"


def test_loadgen_self_host_smoke():
    """A small self-hosted campaign: zero errors, every request
    completed, and a cache hit-rate past the smoke gate."""
    with tempfile.TemporaryDirectory() as cache_dir:
        payload = run_loadgen(
            clients=30,
            requests_per_client=3,
            distinct=6,
            seed=1,
            cache_dir=cache_dir,
            jobs=4,
            mode="thread",
        )
    assert payload["errors"] == 0, payload["error_samples"]
    assert payload["completed"] == payload["requests"] == 90
    assert payload["healthz_ok"] is True
    assert payload["hit_rate"] > 0.5
    assert payload["cache"]["hits"] >= 1
    assert payload["cache"]["misses"] == payload["cache"]["puts"] == 6
    assert payload["latency"]["count"] == 90
    assert payload["latency"]["p99_s"] >= payload["latency"]["p50_s"] > 0
    assert payload["throughput_rps"] > 0
    assert check_loadgen(payload) == []
    assert "0 error(s)" in render_loadgen(payload)


def test_check_loadgen_findings():
    bad = {
        "healthz_ok": False,
        "errors": 2,
        "error_samples": ["status 500: x"],
        "completed": 80,
        "requests": 90,
        "hit_rate": 0.2,
        "cache": {"hits": 0},
    }
    findings = check_loadgen(bad)
    assert len(findings) == 5
    assert any("healthz" in finding for finding in findings)
    assert any("hit_rate" in finding for finding in findings)
    assert any("cached replay" in finding for finding in findings)
