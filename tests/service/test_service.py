"""End-to-end tests of the scheduler service HTTP API.

The load-bearing properties:

* responses are **byte-identical** to the CLI pipeline
  (:func:`repro.analysis.compare.run_scheduler` /
  :func:`~repro.analysis.compare.run_pipeline_batch`) serialised
  through the same canonical encoder;
* infeasible and lint-error payloads round-trip the same structured
  numbers (``required``/``available``, diagnostic codes) the CLI
  renders;
* N concurrent identical requests compile exactly once (single-flight
  + shared cache), asserted down to the metrics counters.
"""

import asyncio
import json
import tempfile

import pytest

from repro.analysis.compare import run_pipeline_batch, run_scheduler
from repro.arch.params import Architecture
from repro.errors import InfeasibleScheduleError, LintError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.schedule.base import DataSchedulerBase, ScheduleOptions
from repro.service.loadgen import _post_bytes, _read_response
from repro.service.protocol import SCHEDULERS, encode_json, outcome_payload
from repro.service.server import ServerThread
from repro.workloads.spec import paper_experiments


def _spec(experiment_id):
    return next(
        spec for spec in paper_experiments() if spec.id == experiment_id
    )


async def _request_async(host, port, path, method="GET", body=b""):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if method == "GET":
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\nHost: t\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
        else:
            writer.write(_post_bytes(path, body))
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


def request(server, path, method="GET", body=b""):
    """One request; returns ``(status, raw_body_bytes)``."""
    return asyncio.run(
        _request_async(
            server.service.host, server.service.port, path, method, body
        )
    )


@pytest.fixture(scope="module")
def server():
    with tempfile.TemporaryDirectory() as cache_dir:
        with ServerThread(
            cache_dir=cache_dir, mode="thread", jobs=4
        ) as thread:
            yield thread


def test_healthz(server):
    status, body = request(server, "/v1/healthz")
    payload = json.loads(body)
    assert status == 200
    assert payload["ok"] is True
    assert payload["status"] == "ok"
    assert payload["uptime_s"] >= 0


@pytest.mark.parametrize("experiment_id", ["E1", "E3", "MPEG"])
@pytest.mark.parametrize("scheduler_name", ["basic", "ds", "cds"])
def test_schedule_byte_identical_to_cli_pipeline(
    server, experiment_id, scheduler_name
):
    """The service response is the CLI ``run_scheduler`` outcome,
    byte for byte, for every scheduler on feasible and infeasible
    paper rows alike."""
    spec = _spec(experiment_id)
    status, body = request(
        server, "/v1/schedule", "POST",
        encode_json(
            {"experiment": experiment_id, "scheduler": scheduler_name}
        ),
    )
    assert status == 200

    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    outcome = run_scheduler(
        SCHEDULERS[scheduler_name](architecture, ScheduleOptions()),
        application, clustering, architecture, trace=True,
    )
    expected = encode_json(outcome_payload(outcome, workload=spec.id))
    assert body == expected


def test_infeasible_numbers_round_trip(server):
    """MPEG at a 1K frame buffer under the Basic Scheduler — the
    paper's canonical infeasible case — serves the same structured
    required/available words the CLI renders."""
    status, body = request(
        server, "/v1/schedule", "POST",
        encode_json(
            {"experiment": "MPEG", "fb_words": "1K", "scheduler": "basic"}
        ),
    )
    payload = json.loads(body)
    assert status == 200
    assert payload["ok"] is True
    assert payload["feasible"] is False
    assert payload["schedule"] is None and payload["report"] is None

    spec = _spec("MPEG")
    application, clustering = spec.build()
    architecture = Architecture.m1("1K")
    with pytest.raises(InfeasibleScheduleError) as excinfo:
        SCHEDULERS["basic"](architecture).schedule(application, clustering)
    error = excinfo.value
    assert payload["infeasible_reason"] == str(error)
    assert payload["error"] == {
        "type": "InfeasibleScheduleError",
        "message": str(error),
        "cluster": error.cluster,
        "required": error.required,
        "available": error.available,
    }
    assert payload["error"]["required"] > payload["error"]["available"]


def test_lint_error_round_trips_as_422(server, monkeypatch):
    """A strict-lint failure maps to 422 with the diagnostics payload.

    Valid schedules are lint-clean by construction (property-tested),
    so the error path is forced by sabotaging the self-lint hook —
    thread-mode workers share the test process, so the monkeypatch
    reaches them."""
    diagnostic = Diagnostic(
        code="SCHED999",
        severity=Severity("error"),
        layer="schedule",
        location="cluster Cl1",
        message="sabotaged for the 422 round-trip test",
        cost_words=7,
    )

    def sabotage(self, schedule):
        raise LintError("1 lint error(s)", (diagnostic,))

    monkeypatch.setattr(DataSchedulerBase, "_self_lint", sabotage)
    status, body = request(
        server, "/v1/schedule", "POST",
        encode_json(
            {
                "experiment": "E1",
                "options": {"strict_lint": True},
                # trace=False keeps the request key distinct from other
                # tests' cached E1 responses.
                "trace": False,
            }
        ),
    )
    payload = json.loads(body)
    assert status == 422
    assert payload["ok"] is False
    assert payload["error"]["type"] == "LintError"
    assert payload["error"]["diagnostics"] == [diagnostic.to_json()]


def test_batch_byte_identical_to_pipeline_batch(server):
    """The batch endpoint equals ``run_pipeline_batch`` payloads."""
    cases = [
        {"experiment": "E1"},
        {"experiment": "E2", "scheduler": "ds"},
        {"experiment": "MPEG", "fb_words": "1K", "scheduler": "basic"},
    ]
    status, body = request(
        server, "/v1/batch", "POST",
        encode_json({"cases": cases, "trace": False}),
    )
    assert status == 200

    items = []
    names = []
    for case in cases:
        spec = _spec(case["experiment"])
        application, clustering = spec.build()
        architecture = Architecture.m1(case.get("fb_words", spec.fb))
        items.append(
            (case.get("scheduler", "cds"), application, clustering,
             architecture, ScheduleOptions(), None)
        )
        names.append(spec.id)
    outcomes = run_pipeline_batch(items, trace=False)
    expected = encode_json(
        {
            "ok": True,
            "count": len(outcomes),
            "results": [
                outcome_payload(outcome, workload=name)
                for name, outcome in zip(names, outcomes)
            ],
        }
    )
    assert body == expected


def test_concurrent_identical_requests_compile_once():
    """Single-flight: N concurrent identical requests produce one
    compile, one cache write, and N byte-identical responses."""
    n_clients = 32
    request_body = encode_json(
        {"experiment": "ATR-FI", "scheduler": "cds", "trace": False}
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        with ServerThread(
            cache_dir=cache_dir, mode="thread", jobs=4
        ) as thread:
            host, port = thread.service.host, thread.service.port

            async def fire():
                return await asyncio.gather(
                    *(
                        _request_async(
                            host, port, "/v1/schedule", "POST", request_body
                        )
                        for _ in range(n_clients)
                    )
                )

            responses = asyncio.run(fire())
            snapshot = thread.service.registry.snapshot()

    statuses = {status for status, _ in responses}
    bodies = {body for _, body in responses}
    assert statuses == {200}
    assert len(bodies) == 1, "all coalesced responses must be identical"

    counters = snapshot["counters"]
    timers = snapshot["timers"]
    # Exactly one scheduling run and one cache write happened...
    assert timers["pipeline.cds/schedule"]["count"] == 1
    assert counters["cache/cache.put"] == 1
    assert counters["cache/cache.miss"] == 1
    # ...and every other client either coalesced onto the in-flight
    # leader or replayed the cached outcome.
    leaders = counters["service/singleflight.leader"]
    followers = counters.get("service/singleflight.follower", 0)
    hits = counters.get("cache/cache.hit", 0)
    assert leaders + followers == n_clients
    assert followers + hits == n_clients - 1


def test_workload_request_matches_experiment_request(server):
    """An inline FuzzCase workload body runs the same pipeline as the
    equivalent experiment reference."""
    from repro.fuzz.case import FuzzCase

    spec = _spec("E1")
    application, clustering = spec.build()
    case = FuzzCase.from_workload(
        application, clustering, spec.fb_words, name="E1"
    )
    status, body = request(
        server, "/v1/schedule", "POST",
        encode_json({"workload": case.to_dict(), "scheduler": "cds"}),
    )
    _, expected = request(
        server, "/v1/schedule", "POST",
        encode_json({"experiment": "E1", "scheduler": "cds"}),
    )
    assert status == 200
    assert body == expected


def test_metrics_endpoint_shape(server):
    status, body = request(server, "/v1/metrics")
    payload = json.loads(body)
    assert status == 200
    assert payload["ok"] is True
    latency = payload["service"]["latency"]
    assert set(latency) == {"count", "mean_s", "p50_s", "p99_s", "max_s"}
    assert payload["service"]["requests"] >= latency["count"] > 0
    assert "counters" in payload["metrics"]
    assert "timers" in payload["metrics"]


@pytest.mark.parametrize(
    "body, fragment",
    [
        (b"{not json", "not valid JSON"),
        (b"[1,2]", "JSON object"),
        (b"{}", "exactly one of"),
        (b'{"experiment": "E1", "workload": {}}', "exactly one of"),
        (b'{"experiment": "NOPE"}', "unknown experiment"),
        (b'{"experiment": "E1", "scheduler": "magic"}',
         "unknown scheduler"),
        (b'{"experiment": "E1", "bogus": 1}', "unknown request key"),
        (b'{"experiment": "E1", "options": {"bogus": 1}}',
         "unknown option"),
        (b'{"experiment": "E1", "trace": "yes"}', "trace must be"),
        (b'{"experiment": "E1", "fb_words": "huge"}',
         "invalid fb_words"),
    ],
)
def test_bad_requests_are_400(server, body, fragment):
    status, raw = request(server, "/v1/schedule", "POST", body)
    payload = json.loads(raw)
    assert status == 400
    assert payload["ok"] is False
    assert fragment in payload["error"]["message"]


def test_batch_bad_requests(server):
    status, raw = request(
        server, "/v1/batch", "POST", encode_json({"cases": []})
    )
    assert status == 400
    status, raw = request(
        server, "/v1/batch", "POST",
        encode_json({"cases": [{"experiment": "E1"}], "engine": "warp"}),
    )
    payload = json.loads(raw)
    assert status == 400
    assert "unknown engine" in payload["error"]["message"]


def test_unknown_route_and_wrong_method(server):
    status, raw = request(server, "/v1/nothing")
    assert status == 404
    status, raw = request(server, "/v1/healthz", "POST", b"{}")
    assert status == 405
    status, raw = request(server, "/v1/schedule")
    assert status == 405
