"""Small-surface tests: CLI sweep, wavelet workload, report edges,
program listing, allocator fit policies."""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.alloc.free_list import FreeBlockList
from repro.arch.params import Architecture
from repro.cli import main
from repro.errors import AllocationError
from repro.schedule.complete import CompleteDataScheduler


class TestCliSweep:
    def test_sweep_command(self, capsys):
        assert main(["sweep", "ATR-FI"]) == 0
        out = capsys.readouterr().out
        assert "frame-buffer sweep" in out
        assert "infeasible" in out  # the 0.5K point


class TestWaveletWorkload:
    def test_builds_and_runs(self):
        from repro.arch.machine import MorphoSysM1
        from repro.codegen.generator import generate_program
        from repro.sim.engine import Simulator
        from repro.workloads.wavelet import wavelet_functional

        application, clustering, impls = wavelet_functional()
        assert set(impls) == {k.name for k in application.kernels}
        arch = Architecture.m1("1K")
        schedule = CompleteDataScheduler(arch).schedule(
            application, clustering
        )
        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(
            generate_program(schedule), functional=True,
            kernel_impls=impls,
        )
        assert report.functional_verified is True

    def test_cycles_come_from_extractor(self):
        from repro.kernels import default_library
        from repro.workloads.wavelet import wavelet_functional
        library = default_library()
        application, _, _ = wavelet_functional(library)
        assert application.kernel("haar").cycles == \
            library.cycles_for("haar8")


class TestBestFit:
    def test_best_fit_picks_snuggest_block(self):
        fbl = FreeBlockList(100)
        fbl.allocate_at(20, 10)  # free: [0..20) and [30..100)
        extent = fbl.allocate_high(15, best_fit=True)
        # Best fit: the 20-word block, not the 70-word one.
        assert extent.start == 5
        first = FreeBlockList(100)
        first.allocate_at(20, 10)
        assert first.allocate_high(15).start == 85  # first fit: top block

    def test_best_fit_low(self):
        fbl = FreeBlockList(100)
        fbl.allocate_at(20, 10)
        extent = fbl.allocate_low(15, best_fit=True)
        assert extent.start == 0  # the 20-word block is snuggest

    def test_allocator_rejects_unknown_policy(self, sharing_app,
                                              sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        with pytest.raises(AllocationError):
            FrameBufferAllocator(schedule, fit_policy="random")

    def test_best_fit_allocator_still_correct(self, sharing_app,
                                              sharing_clustering):
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        allocator = FrameBufferAllocator(schedule, fit_policy="best")
        for fb_set in (0, 1):
            allocation = allocator.allocate_set(fb_set)
            allocation.verify()


class TestReportEdges:
    def test_empty_gantt(self):
        from repro.sim.report import SimulationReport
        report = SimulationReport(
            scheduler="x", application="y", total_cycles=0,
            compute_cycles=0, rc_stall_cycles=0, dma_busy_cycles=0,
            data_load_words=0, data_store_words=0, context_words=0,
            data_load_count=0, data_store_count=0, context_load_count=0,
            visits=(), transfers=(),
        )
        assert report.gantt() == "(empty run)"
        assert report.rc_utilisation == 0.0

    def test_improvement_over_zero_baseline_rejected(self):
        from repro.sim.report import SimulationReport
        zero = SimulationReport(
            scheduler="x", application="y", total_cycles=0,
            compute_cycles=0, rc_stall_cycles=0, dma_busy_cycles=0,
            data_load_words=0, data_store_words=0, context_words=0,
            data_load_count=0, data_store_count=0, context_load_count=0,
            visits=(), transfers=(),
        )
        with pytest.raises(ValueError):
            zero.improvement_over(zero)


class TestProgramListing:
    def test_full_listing_has_every_visit(self, sharing_app,
                                          sharing_clustering):
        from repro.codegen.generator import generate_program
        schedule = CompleteDataScheduler(Architecture.m1("2K")).schedule(
            sharing_app, sharing_clustering
        )
        program = generate_program(schedule)
        listing = program.listing()  # max_visits=0: everything
        assert f"visit {len(program) - 1}" in listing
        assert "more visits" not in listing


class TestCliTinyrisc:
    def test_tinyrisc_command(self, capsys):
        assert main(["tinyrisc", "E1", "--lines", "10"]) == 0
        out = capsys.readouterr().out
        assert "ldctxt" in out
        assert "instructions" in out
        assert "more instructions" in out
