"""Cached and uncached pipeline runs are byte-identical.

The acceptance property of the persistent cache: a warm run must be a
pure replay — equal schedules, equal :class:`~repro.sim.report.
SimulationReport`\\ s, equal driver aggregates — never an
approximation.  Exercised at the ``run_scheduler`` level (the unit the
corpus/sweep drivers build on), the driver level, and the fuzz-oracle
level.
"""

from repro.analysis.compare import compare_workload, run_scheduler
from repro.analysis.corpus import corpus_study
from repro.arch.params import Architecture
from repro.cache import CacheStore
from repro.fuzz.generator import generate_case
from repro.fuzz.oracles import run_oracles
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.spec import paper_experiments


def _spec(exp_id="MPEG"):
    return next(
        spec for spec in paper_experiments()
        if spec.id.upper() == exp_id
    )


class TestRunSchedulerCache:
    def test_cold_fill_then_warm_hit_byte_identical(self, tmp_path):
        spec = _spec()
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        store = CacheStore(tmp_path)

        uncached = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False,
        )
        cold = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False, cache=store,
        )
        warm = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False, cache=store,
        )
        assert store.misses == 1 and store.hits == 1
        for outcome in (cold, warm):
            assert outcome.schedule == uncached.schedule
            assert outcome.report == uncached.report
            assert outcome.feasible == uncached.feasible

    def test_warm_hit_across_store_instances(self, tmp_path):
        """The disk round-trip (pickle) preserves equality, not just
        the in-process object."""
        spec = _spec()
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False, cache=CacheStore(tmp_path),
        )
        fresh_store = CacheStore(tmp_path)
        warm = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False, cache=fresh_store,
        )
        assert fresh_store.hits == 1
        uncached = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False,
        )
        assert warm.schedule == uncached.schedule
        assert warm.report == uncached.report

    def test_infeasible_outcomes_cached_too(self, tmp_path):
        spec = _spec()
        application, clustering = spec.build()
        tiny = Architecture.m1(64)
        store = CacheStore(tmp_path)
        cold = run_scheduler(
            CompleteDataScheduler(tiny), application, clustering, tiny,
            trace=False, cache=store,
        )
        warm = run_scheduler(
            CompleteDataScheduler(tiny), application, clustering, tiny,
            trace=False, cache=store,
        )
        assert not cold.feasible
        assert store.hits == 1
        assert warm == cold

    def test_trace_flag_partitions_the_key(self, tmp_path):
        spec = _spec()
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        store = CacheStore(tmp_path)
        run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=False, cache=store,
        )
        traced = run_scheduler(
            CompleteDataScheduler(architecture), application, clustering,
            architecture, trace=True, cache=store,
        )
        # Second call was a miss: traced reports carry the transfer
        # trace and must not replay an untraced entry.
        assert store.misses == 2
        assert traced.report.transfers


class TestDriverCache:
    def test_compare_workload_round_trip(self, tmp_path):
        spec = _spec()
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        uncached = compare_workload(
            application, clustering, architecture, trace=False
        )
        store = CacheStore(tmp_path)
        compare_workload(
            application, clustering, architecture, trace=False,
            cache=store,
        )
        warm = compare_workload(
            application, clustering, architecture, trace=False,
            cache=store,
        )
        assert warm == uncached
        assert store.hits == 3  # one per scheduler

    def test_corpus_study_warm_equals_cold_equals_uncached(self, tmp_path):
        seeds = range(6)
        uncached = corpus_study(seeds, fb="2K", iterations=4)
        cold = corpus_study(
            seeds, fb="2K", iterations=4, cache_dir=str(tmp_path)
        )
        warm = corpus_study(
            seeds, fb="2K", iterations=4, cache_dir=str(tmp_path)
        )
        assert cold.__dict__ == uncached.__dict__
        assert warm.__dict__ == uncached.__dict__

    def test_corpus_parallel_workers_share_the_cache(self, tmp_path):
        seeds = range(4)
        cold = corpus_study(
            seeds, fb="2K", iterations=4, jobs=2,
            cache_dir=str(tmp_path),
        )
        warm = corpus_study(
            seeds, fb="2K", iterations=4, jobs=2,
            cache_dir=str(tmp_path),
        )
        assert warm.__dict__ == cold.__dict__
        assert CacheStore(tmp_path).stats()["entries"] > 0


class TestOracleCache:
    def test_verdicts_replay_byte_identical(self, tmp_path):
        case = generate_case("baseline", 3)
        store = CacheStore(tmp_path)
        uncached = run_oracles(case, functional=False)
        cold = run_oracles(case, functional=False, cache=store)
        warm = run_oracles(case, functional=False, cache=store)
        assert store.hits == 1
        assert cold == uncached
        assert warm == uncached

    def test_renamed_case_hits_and_rebinds_name(self, tmp_path):
        case = generate_case("tiny_fb", 5)
        store = CacheStore(tmp_path)
        cold = run_oracles(case, functional=False, cache=store)
        renamed = generate_case("tiny_fb", 5)
        renamed.name = "reproducer-under-test"
        warm = run_oracles(renamed, functional=False, cache=store)
        assert store.hits == 1
        assert [f.oracle for f in warm] == [f.oracle for f in cold]
        assert all(f.case == "reproducer-under-test" for f in warm)
