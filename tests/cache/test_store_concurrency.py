"""Concurrency stress tests of the persistent cache store.

Regression tests for the clear-vs-put races: before the fix, a
``put()`` racing a ``clear()`` crashed with ``FileNotFoundError`` when
the generation directory vanished between ``mkdir`` and the temp-file
creation (or the rename), and a ``clear()`` racing a ``put()`` crashed
with ``ENOTEMPTY`` when a fan-out directory was re-populated after
being emptied.  Post-fix, both operations retry/skip and the cache
degrades to misses, never to exceptions.
"""

import multiprocessing
import threading
import traceback

import pytest

from repro.cache import CacheStore


def _writer(root, worker, iterations, failures):
    try:
        store = CacheStore(root)
        for index in range(iterations):
            key = f"{worker:02d}{index % 23:062d}"
            store.put(key, {"worker": worker, "index": index})
            value = store.get(key)
            # A racing clear may turn the read into a miss; it must
            # never return someone else's value.
            if value is not None:
                assert value["worker"] == worker
    except BaseException:
        failures.put(f"writer {worker}:\n{traceback.format_exc()}")
        raise


def _clearer(root, iterations, failures):
    try:
        store = CacheStore(root)
        # Make sure the tag exists even if we win the initial race
        # (key disjoint from every writer's "NNxxx..." key space).
        store.put("e" * 64, "tag-seed")
        for _ in range(iterations):
            store.clear()
    except BaseException:
        failures.put(f"clearer:\n{traceback.format_exc()}")
        raise


@pytest.mark.parametrize("writers", [3])
def test_multiprocess_put_get_clear_stress(tmp_path, writers):
    """Concurrent writer processes and a clear storm never crash."""
    root = str(tmp_path / "cache")
    context = multiprocessing.get_context()
    failures = context.Queue()
    processes = [
        context.Process(
            target=_writer, args=(root, worker, 150, failures)
        )
        for worker in range(writers)
    ]
    processes.append(
        context.Process(target=_clearer, args=(root, 80, failures))
    )
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    messages = []
    while not failures.empty():
        messages.append(failures.get())
    assert not messages, "\n".join(messages)
    assert all(process.exitcode == 0 for process in processes), [
        process.exitcode for process in processes
    ]
    # The store still works after the storm.
    store = CacheStore(root)
    store.put("f" * 64, "after-the-storm")
    assert store.get("f" * 64) == "after-the-storm"


def test_threaded_clear_vs_put_race(tmp_path):
    """In-process interleaving of put/clear: no exceptions, and the
    store remains readable."""
    root = str(tmp_path / "cache")
    store = CacheStore(root)
    store.put("a" * 64, "seed")
    errors = []
    stop = threading.Event()

    def put_loop():
        try:
            index = 0
            while not stop.is_set():
                store.put(f"{index % 31:064d}", index)
                index += 1
        except BaseException:
            errors.append(traceback.format_exc())

    def clear_loop():
        try:
            for _ in range(200):
                store.clear()
        except BaseException:
            errors.append(traceback.format_exc())

    writers = [threading.Thread(target=put_loop) for _ in range(3)]
    clearer = threading.Thread(target=clear_loop)
    for thread in writers:
        thread.start()
    clearer.start()
    clearer.join(timeout=120)
    stop.set()
    for thread in writers:
        thread.join(timeout=120)
    assert not errors, "\n".join(errors)
    store.put("b" * 64, "alive")
    assert store.get("b" * 64) == "alive"


def test_corrupt_entry_cleanup_leaves_concurrent_rewrite(tmp_path):
    """The corrupt-entry cleanup only removes the bytes it failed to
    read: a fresh entry atomically renamed over the corrupt one
    between open and cleanup must survive."""
    store = CacheStore(str(tmp_path / "cache"))
    key = "c" * 64
    store.put(key, "good")
    path = store._path(key)
    path.write_bytes(b"corrupt")

    import os
    import pickle

    original_stat = os.stat

    def stat_with_rewrite(target, *args, **kwargs):
        # Simulate a concurrent put landing between the failed read
        # and the cleanup's inode check.
        if str(target) == str(path):
            tmp = path.with_suffix(".new")
            tmp.write_bytes(pickle.dumps("fresh"))
            os.replace(tmp, path)
        return original_stat(target, *args, **kwargs)

    import unittest.mock

    with unittest.mock.patch("os.stat", side_effect=stat_with_rewrite):
        assert store.get(key) is None  # the corrupt read is a miss
    assert store.get(key) == "fresh"  # the concurrent rewrite survived
