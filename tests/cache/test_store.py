"""Unit tests for the persistent content-addressed cache store."""

import os
import pickle

import pytest

from repro.cache import (
    CacheStore,
    case_key,
    code_fingerprint,
    default_cache_dir,
    digest,
    outcome_key,
    workload_fingerprint,
)
from repro.cache.store import TAG_FILE
from repro.fuzz.generator import generate_case
from repro.schedule.base import ScheduleOptions
from repro.workloads.spec import paper_experiments


class TestStoreBasics:
    def test_miss_then_hit(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get("a" * 64) is None
        store.put("a" * 64, {"value": 42})
        assert store.get("a" * 64) == {"value": 42}
        assert store.hits == 1 and store.misses == 1

    def test_persists_across_instances(self, tmp_path):
        CacheStore(tmp_path).put("b" * 64, ("x", 1))
        assert CacheStore(tmp_path).get("b" * 64) == ("x", 1)

    def test_put_writes_tag_marker(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("c" * 64, 1)
        assert (tmp_path / TAG_FILE).exists()

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "d" * 64
        store.put(key, [1, 2, 3])
        path = store._path(key)
        path.write_bytes(b"\x80truncated garbage")
        assert store.get(key) is None
        assert not path.exists()

    def test_stats_counts_current_and_stale(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("e" * 64, 1)
        store.put("f" * 64, 2)
        # Fake a stale generation left by an older code revision.
        stale = tmp_path / "0123456789abcdef" / "aa"
        stale.mkdir(parents=True)
        (stale / ("a" * 64 + ".pkl")).write_bytes(pickle.dumps(3))
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["stale_entries"] == 1
        assert stats["generations"] == 2
        assert stats["total_bytes"] > 0

    def test_clear_removes_everything(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("a" * 64, 1)
        store.put("b" * 64, 2)
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        # Idempotent on the now-empty (still tagged) root.
        assert store.clear() == 0

    def test_clear_refuses_untagged_directory(self, tmp_path):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("do not delete")
        with pytest.raises(ValueError, match="refusing"):
            CacheStore(victim).clear()
        assert (victim / "data.txt").exists()

    def test_clear_missing_root_is_a_noop(self, tmp_path):
        assert CacheStore(tmp_path / "never-created").clear() == 0

    def test_default_dir_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        assert str(default_cache_dir()) == "/somewhere/else"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"


class TestVersionedInvalidation:
    def test_generation_dir_is_code_fingerprint_prefix(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("a" * 64, 1)
        children = [p.name for p in tmp_path.iterdir() if p.is_dir()]
        assert children == [code_fingerprint()[:16]]

    def test_code_fingerprint_is_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_entries_of_other_generations_are_invisible(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "a" * 64
        other = tmp_path / ("0" * 16) / key[:2]
        other.mkdir(parents=True)
        (other / f"{key}.pkl").write_bytes(pickle.dumps("stale value"))
        assert store.get(key) is None


class TestKeys:
    def _workload(self):
        spec = next(iter(paper_experiments()))
        return spec.build()

    def test_outcome_key_is_content_addressed(self):
        application, clustering = self._workload()
        spec = next(iter(paper_experiments()))
        from repro.arch.params import Architecture

        architecture = Architecture.m1(spec.fb)
        base = outcome_key(
            "cds", application, clustering, architecture,
            options=ScheduleOptions(), trace=False,
        )
        # Rebuilt (structurally identical) workload: same key.
        application2, clustering2 = spec.build()
        assert base == outcome_key(
            "cds", application2, clustering2, architecture,
            options=ScheduleOptions(), trace=False,
        )
        # Any input change flips the key.
        assert base != outcome_key(
            "ds", application, clustering, architecture,
            options=ScheduleOptions(), trace=False,
        )
        assert base != outcome_key(
            "cds", application, clustering, architecture,
            options=ScheduleOptions(), trace=True,
        )
        assert base != outcome_key(
            "cds", application, clustering, architecture,
            options=ScheduleOptions(rf_cap=2), trace=False,
        )
        assert base != outcome_key(
            "cds", application, clustering, architecture,
            options=ScheduleOptions(), dma_policy="loads_first",
            trace=False,
        )

    def test_options_fingerprint_covers_every_field(self):
        """A new ScheduleOptions field must be added to the persistent
        fingerprint, or stale cache entries would replay silently."""
        import dataclasses

        from repro.cache import options_fingerprint

        fingerprint = options_fingerprint(ScheduleOptions())
        assert len(fingerprint) == len(
            dataclasses.fields(ScheduleOptions)
        )

    def test_case_key_ignores_name_and_provenance(self):
        case = generate_case("baseline", 7)
        renamed = generate_case("baseline", 7)
        renamed.name = "shrunk-reproducer"
        renamed.regime = ""
        renamed.seed = None
        renamed.failing_oracle = "traffic"
        assert case_key(case) == case_key(renamed)
        other = generate_case("baseline", 8)
        assert case_key(case) != case_key(other)

    def test_workload_fingerprint_identity_free(self):
        application, clustering = self._workload()
        application2, clustering2 = next(
            iter(paper_experiments())
        ).build()
        assert workload_fingerprint(
            application, clustering
        ) == workload_fingerprint(application2, clustering2)

    def test_digest_shape(self):
        assert digest(("a", 1)) != digest(("a", 2))
        assert len(digest(("a",))) == 64
