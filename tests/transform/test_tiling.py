"""Tests for intra-kernel tiling (future work: data management within
a kernel)."""

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError, WorkloadError
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator
from repro.transform.tiling import tile_kernel, tiled_names


@pytest.fixture
def fat_app():
    """An application whose middle kernel's working set (1600 words)
    exceeds a 1K frame-buffer set."""
    return (
        Application.build("fat", total_iterations=4)
        .data("stream", 800)
        .data("params", 64, invariant=True)
        .kernel("pre", context_words=32, cycles=100,
                inputs=["params"], outputs=["gain"],
                result_sizes={"gain": 32})
        .kernel("big", context_words=64, cycles=800,
                inputs=["stream", "gain"],
                outputs=["wide"], result_sizes={"wide": 800})
        .kernel("post", context_words=32, cycles=200,
                inputs=["wide"],
                outputs=["out"], result_sizes={"out": 64})
        .final("out")
        .finish()
    )


class TestTransform:
    def test_names(self):
        assert tiled_names("x", 3) == ("x@0", "x@1", "x@2")

    def test_structure(self, fat_app):
        tiled = tile_kernel(fat_app, "big", 4)
        names = tiled.kernel_names
        assert "big@0" in names and "big@3" in names
        assert "big" not in names
        assert len(tiled.kernels) == len(fat_app.kernels) + 3

    def test_private_input_split(self, fat_app):
        tiled = tile_kernel(fat_app, "big", 4)
        assert tiled.object("stream@0").size == 200
        assert "stream" not in tiled.objects
        # Each sub-kernel reads exactly its own tile.
        assert tiled.kernel("big@2").inputs == ("stream@2", "gain")

    def test_shared_input_kept_whole(self, fat_app):
        """'gain' is produced by 'pre'; it stays whole and feeds every
        sub-kernel."""
        tiled = tile_kernel(fat_app, "big", 4)
        for tile in range(4):
            assert "gain" in tiled.kernel(f"big@{tile}").inputs

    def test_outputs_split_and_rewired(self, fat_app):
        tiled = tile_kernel(fat_app, "big", 4)
        assert tiled.object("wide@0").size == 200
        assert set(tiled.kernel("post").inputs) == {
            "wide@0", "wide@1", "wide@2", "wide@3"
        }

    def test_context_words_reused_across_tiles(self, fat_app):
        tiled = tile_kernel(fat_app, "big", 4)
        assert tiled.kernel("big@0").context_words == 64
        assert tiled.kernel("big@1").context_words == 8

    def test_cycles_divided(self, fat_app):
        tiled = tile_kernel(fat_app, "big", 4)
        total = sum(tiled.kernel(f"big@{t}").cycles for t in range(4))
        assert total == 800

    def test_final_outputs_propagate(self):
        app = (
            Application.build("f", total_iterations=2)
            .data("d", 100)
            .kernel("k", context_words=8, cycles=10, inputs=["d"],
                    outputs=["o"], result_sizes={"o": 100})
            .final("o")
            .finish()
        )
        tiled = tile_kernel(app, "k", 2)
        assert tiled.final_outputs == frozenset({"o@0", "o@1"})

    def test_invalid_factor(self, fat_app):
        with pytest.raises(WorkloadError):
            tile_kernel(fat_app, "big", 1)

    def test_unknown_kernel(self, fat_app):
        with pytest.raises(KeyError):
            tile_kernel(fat_app, "ghost", 2)

    def test_oversplit_rejected(self, fat_app):
        with pytest.raises(WorkloadError):
            tile_kernel(fat_app, "big", 1000)

    def test_result_is_valid_application(self, fat_app):
        from repro.core.dataflow import analyze_dataflow
        tiled = tile_kernel(fat_app, "big", 4)
        analyze_dataflow(tiled, Clustering.per_kernel(tiled))


class TestSchedulability:
    def test_infeasible_becomes_feasible(self, fat_app):
        """The paper's motivation: the monolithic kernel cannot fit a
        1K set; the tiled version schedules."""
        arch = Architecture.m1("1K")
        with pytest.raises(InfeasibleScheduleError):
            DataScheduler(arch).schedule(
                fat_app, Clustering.per_kernel(fat_app)
            )
        tiled = tile_kernel(fat_app, "big", 4)
        clustering = Clustering(
            tiled,
            [["pre"], ["big@0", "big@1"], ["big@2", "big@3"], ["post"]],
        )
        schedule = DataScheduler(arch).schedule(tiled, clustering)
        assert schedule.rf >= 1

    def test_tiled_app_runs_functionally(self, fat_app):
        arch = Architecture.m1("1K")
        tiled = tile_kernel(fat_app, "big", 4)
        clustering = Clustering(
            tiled,
            [["pre"], ["big@0", "big@1"], ["big@2", "big@3"], ["post"]],
        )
        schedule = DataScheduler(arch).schedule(tiled, clustering)
        program = generate_program(schedule)
        verify_program(program)
        machine = MorphoSysM1(arch, functional=True)
        report = Simulator(machine).run(program, functional=True)
        assert report.functional_verified is True

    def test_context_traffic_cheaper_than_naive_split(self, fat_app):
        """Reusing the configuration across tiles keeps context traffic
        close to the untiled kernel's, not factor times it."""
        tiled = tile_kernel(fat_app, "big", 4)
        naive_total = 64 * 4
        actual_total = sum(
            tiled.kernel(f"big@{t}").context_words for t in range(4)
        )
        assert actual_total < naive_total / 2
