"""Unit tests for the structured decision trace container."""

import pytest

from repro.obs.events import DECISION_KINDS, Decision, DecisionTrace


class TestDecision:
    def test_describe_with_subject_and_detail(self):
        decision = Decision(
            seq=3, kind="keep.accept", subject="filter_bank",
            detail={"rf": 2, "reason": "fits"},
        )
        text = decision.describe()
        assert text.startswith("[3] keep.accept filter_bank")
        assert "rf=2" in text
        assert "reason='fits'" in text

    def test_describe_without_subject(self):
        decision = Decision(seq=0, kind="rf.probe", subject="",
                            detail={"rf": 4, "fits": False})
        assert decision.describe() == "[0] rf.probe (rf=4, fits=False)"


class TestDecisionTrace:
    def test_record_appends_gap_free_sequence(self):
        trace = DecisionTrace()
        for kind in ("tf.rank", "keep.accept", "rf.probe"):
            trace.record(kind, "obj")
        assert [event.seq for event in trace] == [0, 1, 2]
        assert len(trace) == 3
        assert trace.events == tuple(trace)

    def test_unknown_kind_rejected(self):
        trace = DecisionTrace()
        with pytest.raises(ValueError, match="unknown decision kind"):
            trace.record("keep.maybe", "obj")
        assert len(trace) == 0

    def test_every_documented_kind_is_recordable(self):
        trace = DecisionTrace()
        for kind in DECISION_KINDS:
            trace.record(kind, "x")
        assert len(trace) == len(DECISION_KINDS)

    def test_why_indexes_by_subject_in_order(self):
        trace = DecisionTrace()
        trace.record("tf.rank", "a", rank=1)
        trace.record("tf.rank", "b", rank=2)
        trace.record("keep.accept", "a", rf=2)
        about_a = trace.why("a")
        assert [event.kind for event in about_a] == ["tf.rank", "keep.accept"]
        assert trace.why("missing") == []

    def test_global_decisions_not_indexed_under_empty_subject(self):
        trace = DecisionTrace()
        trace.record("rf.probe", rf=2, fits=True)
        assert trace.why("") == []
        assert len(trace) == 1

    def test_explain_renders_or_reports_absence(self):
        trace = DecisionTrace()
        trace.record("keep.reject", "a", reason="too big")
        assert "keep.reject a" in trace.explain("a")
        assert "no recorded decision" in trace.explain("b")

    def test_of_kind_and_keep_queries(self):
        trace = DecisionTrace()
        trace.record("keep.accept", "a")
        trace.record("keep.reject", "b")
        trace.record("keep.accept", "c")
        assert [d.subject for d in trace.accepted_keeps()] == ["a", "c"]
        assert [d.subject for d in trace.rejected_keeps()] == ["b"]
        assert len(trace.of_kind("keep.accept", "keep.reject")) == 3

    def test_render_filters_by_kind(self):
        trace = DecisionTrace()
        trace.record("tf.rank", "a")
        trace.record("keep.accept", "a")
        full = trace.render()
        assert "tf.rank" in full and "keep.accept" in full
        only_keeps = trace.render(kinds=["keep.accept"])
        assert "tf.rank" not in only_keeps
        assert DecisionTrace().render() == "(empty decision trace)"

    def test_to_dicts_is_json_ready(self):
        import json

        trace = DecisionTrace()
        trace.record("alloc.place", "a", extents=[[0, 4]])
        dumped = trace.to_dicts()
        assert dumped == [{
            "seq": 0, "kind": "alloc.place", "subject": "a",
            "detail": {"extents": [[0, 4]]},
        }]
        json.dumps(dumped)
