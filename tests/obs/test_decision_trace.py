"""Decision-trace completeness and zero-impact guarantees.

Every retention decision the Complete Data Scheduler makes on the
bundled paper experiments must be explainable from the trace: each kept
object has a ``keep.accept`` record with its occupancy numbers, each
considered-but-dropped candidate a ``keep.reject`` with a reason, and
the chosen RF an ``rf.result`` backed by its ``rf.probe`` history.  And
with tracing off (the default) nothing may change: schedules and
reports must be identical to the traced run's.
"""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.schedule.base import ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.engine import Simulator
from repro.workloads.spec import paper_experiments


def _traced_cds(spec, **option_overrides):
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    options = ScheduleOptions(decision_trace=True, **option_overrides)
    schedule = CompleteDataScheduler(architecture, options).schedule(
        application, clustering
    )
    return architecture, schedule


class TestCompletenessOnPaperExperiments:
    def test_trace_attached_and_non_empty(self):
        for spec in paper_experiments():
            _, schedule = _traced_cds(spec)
            assert schedule.decisions is not None, spec.id
            assert len(schedule.decisions) > 0, spec.id

    def test_every_keep_has_an_accept_record(self):
        for spec in paper_experiments():
            _, schedule = _traced_cds(spec)
            accepted = {d.subject for d in schedule.decisions.accepted_keeps()}
            for keep in schedule.keeps:
                assert keep.name in accepted, (spec.id, keep.name)
                about = schedule.decisions.why(keep.name)
                assert about, (spec.id, keep.name)
                accept = [d for d in about if d.kind == "keep.accept"]
                assert accept, (spec.id, keep.name)
                detail = accept[-1].detail
                assert detail["reason"]
                assert "occupancies" in detail
                assert detail["rf"] == schedule.rf

    def test_every_accept_or_reject_was_ranked_first(self):
        for spec in paper_experiments():
            _, schedule = _traced_cds(spec)
            ranked = {d.subject for d in schedule.decisions.of_kind("tf.rank")}
            for decision in schedule.decisions.of_kind(
                "keep.accept", "keep.reject"
            ):
                assert decision.subject in ranked, (spec.id, decision.subject)

    def test_rejections_carry_reasons(self):
        # The paper experiments all fit their candidates at the paper FB
        # sizes; this seeded workload considers one candidate too big.
        from repro.workloads.random_gen import random_application

        application, clustering = random_application(
            0, max_clusters=6, iterations=8
        )
        architecture = Architecture.m1("4K")
        schedule = CompleteDataScheduler(
            architecture, ScheduleOptions(decision_trace=True)
        ).schedule(application, clustering)
        rejected = schedule.decisions.rejected_keeps()
        assert rejected, "workload did not exercise a keep rejection"
        for decision in rejected:
            assert decision.detail["reason"]
            assert "occupancies" in decision.detail
            assert decision.subject not in schedule.keep_names()

    def test_rf_result_matches_schedule_and_probes_cover_it(self):
        for spec in paper_experiments():
            _, schedule = _traced_cds(spec)
            results = schedule.decisions.of_kind("rf.result")
            assert results, spec.id
            assert results[-1].detail["rf"] == schedule.rf, spec.id
            if schedule.rf > 1:
                probed = {
                    d.detail["rf"]
                    for d in schedule.decisions.of_kind("rf.probe")
                    if d.detail["fits"]
                }
                assert schedule.rf in probed, spec.id

    def test_explain_answers_for_every_kept_object(self):
        spec = next(s for s in paper_experiments() if s.id == "ATR-FI")
        _, schedule = _traced_cds(spec)
        for keep in schedule.keeps:
            text = schedule.decisions.explain(keep.name)
            assert "keep.accept" in text

    def test_joint_rf_policy_records_sweep_points(self):
        for spec in paper_experiments():
            _, schedule = _traced_cds(spec, rf_policy="joint")
            points = schedule.decisions.of_kind("rf.joint")
            assert points, spec.id
            swept = {d.detail["rf"] for d in points}
            assert schedule.rf in swept, spec.id
            results = schedule.decisions.of_kind("rf.result")
            assert results[-1].detail["policy"] == "joint"

    def test_both_occupancy_engines_record_keep_decisions(self):
        spec = next(s for s in paper_experiments() if s.id == "ATR-FI")
        traces = {}
        for engine in ("incremental", "naive"):
            _, schedule = _traced_cds(spec, occupancy_engine=engine)
            assert schedule.decisions.accepted_keeps(), engine
            traces[engine] = {
                (d.kind, d.subject)
                for d in schedule.decisions.of_kind(
                    "keep.accept", "keep.reject"
                )
            }
        assert traces["incremental"] == traces["naive"]


class TestAllocatorExtendsTrace:
    def test_placements_and_frees_recorded(self):
        spec = next(s for s in paper_experiments() if s.id == "ATR-FI")
        _, schedule = _traced_cds(spec)
        before = len(schedule.decisions)
        FrameBufferAllocator(schedule, decisions=schedule.decisions).allocate()
        assert len(schedule.decisions) > before
        placements = schedule.decisions.of_kind("alloc.place")
        assert placements
        for decision in placements:
            detail = decision.detail
            assert detail["size"] > 0
            for start, end in detail["extents"]:
                assert 0 <= start < end
        freed = {d.subject for d in schedule.decisions.of_kind("alloc.free")}
        assert freed

    def test_allocator_without_trace_records_nothing(self):
        spec = next(s for s in paper_experiments() if s.id == "ATR-FI")
        _, schedule = _traced_cds(spec)
        before = len(schedule.decisions)
        FrameBufferAllocator(schedule).allocate()
        assert len(schedule.decisions) == before


class TestZeroImpact:
    @pytest.mark.parametrize("scheduler_cls",
                             [BasicScheduler, DataScheduler,
                              CompleteDataScheduler])
    def test_traced_and_untraced_schedules_identical(self, scheduler_cls):
        from repro.core.dataflow import analyze_dataflow

        for spec in paper_experiments():
            application, clustering = spec.build()
            architecture = Architecture.m1(spec.fb)
            # Share one dataflow analysis so dataclass equality compares
            # the plans, not the (identity-compared) analysis objects.
            dataflow = analyze_dataflow(application, clustering)
            plain = scheduler_cls(architecture).schedule(
                application, clustering, dataflow=dataflow
            )
            traced = scheduler_cls(
                architecture, ScheduleOptions(decision_trace=True)
            ).schedule(application, clustering, dataflow=dataflow)
            assert plain.decisions is None
            assert traced.decisions is not None
            # `decisions` is compare=False, so dataclass equality is the
            # byte-identical-schedule check.
            assert plain == traced, (spec.id, scheduler_cls.name)
            assert plain.describe() == traced.describe()

    def test_traced_and_untraced_reports_identical(self):
        spec = next(s for s in paper_experiments() if s.id == "MPEG")
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        reports = []
        for trace in (False, True):
            schedule = CompleteDataScheduler(
                architecture, ScheduleOptions(decision_trace=trace)
            ).schedule(application, clustering)
            program = generate_program(schedule)
            reports.append(
                Simulator(MorphoSysM1(architecture), trace=True).run(program)
            )
        assert reports[0] == reports[1]

    def test_scheduler_reusable_and_trace_not_shared(self):
        spec = next(s for s in paper_experiments() if s.id == "E1")
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        scheduler = CompleteDataScheduler(
            architecture, ScheduleOptions(decision_trace=True)
        )
        first = scheduler.schedule(application, clustering)
        second = scheduler.schedule(application, clustering)
        assert first.decisions is not second.decisions
        assert first.decisions.to_dicts() == second.decisions.to_dicts()
