"""Metrics registry: recording, snapshots, rollup, and the off switch."""

import pickle

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    inc,
    metrics_active,
    set_metrics_active,
    time_stage,
)


@pytest.fixture(autouse=True)
def _quiescent_global_registry():
    """Leave the process-global registry off and empty around each test."""
    previous = set_metrics_active(False)
    get_registry().reset()
    yield
    set_metrics_active(previous)
    get_registry().reset()


class TestMetricsRegistry:
    def test_counters_accumulate_by_scoped_key(self):
        registry = MetricsRegistry()
        registry.inc("items")
        registry.inc("items", 4)
        registry.inc("items", scope="driver")
        assert registry.counters == {"items": 5, "driver/items": 1}

    def test_observe_tracks_total_count_and_max(self):
        registry = MetricsRegistry()
        registry.observe("stage", 0.25)
        registry.observe("stage", 1.0)
        registry.observe("stage", 0.5)
        timer = registry.timers["stage"]
        assert timer["total_s"] == pytest.approx(1.75)
        assert timer["count"] == 3
        assert timer["max_s"] == pytest.approx(1.0)

    def test_time_stage_records_one_sample(self):
        registry = MetricsRegistry()
        with registry.time_stage("work", scope="pipeline"):
            pass
        timer = registry.timers["pipeline/work"]
        assert timer["count"] == 1
        assert timer["total_s"] >= 0.0

    def test_time_stage_records_even_when_body_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time_stage("work"):
                raise RuntimeError("boom")
        assert registry.timers["work"]["count"] == 1

    def test_snapshot_is_picklable_and_detached(self):
        registry = MetricsRegistry()
        registry.inc("n", 2)
        registry.observe("t", 0.5)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        registry.inc("n", 100)
        assert snapshot["counters"] == {"n": 2}
        assert snapshot["timers"]["t"]["count"] == 1

    def test_merge_folds_counters_and_timers(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.observe("t", 0.5)
        b = MetricsRegistry()
        b.inc("n", 3)
        b.inc("other")
        b.observe("t", 2.0)
        b.observe("t", 0.25)
        a.merge(b.snapshot())
        assert a.counters == {"n": 5, "other": 1}
        timer = a.timers["t"]
        assert timer["count"] == 3
        assert timer["total_s"] == pytest.approx(2.75)
        assert timer["max_s"] == pytest.approx(2.0)

    def test_merge_into_empty_equals_source(self):
        source = MetricsRegistry()
        source.inc("n")
        source.observe("t", 1.5)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.observe("t", 1.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "timers": {}}

    def test_render_lists_timers_and_counters(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.inc("n", 7)
        registry.observe("t", 0.001, scope="s")
        text = registry.render()
        assert "s/t" in text and "n" in text and "7" in text


class TestGlobalSwitch:
    def test_default_off_and_toggle_returns_previous(self):
        assert metrics_active() is False
        assert set_metrics_active(True) is False
        assert metrics_active() is True
        assert set_metrics_active(False) is True

    def test_module_inc_and_time_stage_noop_while_off(self):
        inc("n")
        with time_stage("t"):
            pass
        snapshot = get_registry().snapshot()
        assert snapshot == {"counters": {}, "timers": {}}

    def test_disabled_time_stage_is_a_shared_object(self):
        # The off path must not allocate per call.
        assert time_stage("a") is time_stage("b", scope="c")

    def test_module_helpers_record_while_on(self):
        set_metrics_active(True)
        inc("n", 3, scope="s")
        with time_stage("t"):
            pass
        registry = get_registry()
        assert registry.counters == {"s/n": 3}
        assert registry.timers["t"]["count"] == 1


class TestPipelineIntegration:
    def test_run_scheduler_times_each_stage(self):
        from repro.analysis.compare import compare_experiment
        from repro.workloads.spec import paper_experiments

        spec = next(s for s in paper_experiments() if s.id == "E1")
        set_metrics_active(True)
        try:
            compare_experiment(spec)
        finally:
            set_metrics_active(False)
        timers = get_registry().timers
        # Scheduling runs through the batch front-end (scope "batch");
        # codegen and simulation stay per-scheduler pipeline stages.
        for stage in ("layout", "rf", "keeps", "finalize"):
            key = f"batch/{stage}"
            assert key in timers, key
        for scheduler in ("basic", "ds", "cds"):
            for stage in ("codegen", "simulate"):
                key = f"pipeline.{scheduler}/{stage}"
                assert key in timers, key
                assert timers[key]["count"] == 1

    def test_run_scheduler_times_schedule_stage(self):
        from repro.analysis.compare import run_scheduler
        from repro.arch.params import Architecture
        from repro.schedule.complete import CompleteDataScheduler
        from repro.workloads.spec import paper_experiments

        spec = next(s for s in paper_experiments() if s.id == "E1")
        application, clustering = spec.build()
        architecture = Architecture.m1(spec.fb)
        set_metrics_active(True)
        try:
            run_scheduler(
                CompleteDataScheduler(architecture), application,
                clustering, architecture,
            )
        finally:
            set_metrics_active(False)
        timers = get_registry().timers
        for stage in ("schedule", "codegen", "simulate"):
            key = f"pipeline.cds/{stage}"
            assert key in timers, key
            assert timers[key]["count"] == 1

    def test_pipeline_records_nothing_by_default(self):
        from repro.analysis.compare import compare_experiment
        from repro.workloads.spec import paper_experiments

        spec = next(s for s in paper_experiments() if s.id == "E1")
        compare_experiment(spec)
        assert get_registry().snapshot() == {"counters": {}, "timers": {}}
