"""Request-scoped metrics: isolation, rollup, and the no-op fast path.

Regression tests for the service concurrency bug: with only one
process-global registry, two requests whose pipeline stages interleave
in one process attribute time to each other.  ``request_scope``
installs a per-context registry (a ContextVar, so it follows threads
and asyncio tasks) and merges into the global rollup on exit.
"""

import asyncio
import threading

from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    metrics_active,
    recording_registry,
    request_scope,
    set_metrics_active,
)


def test_scope_records_without_global_flag():
    assert not metrics_active()
    with request_scope() as registry:
        assert metrics_active()
        assert recording_registry() is registry
        metrics.inc("cache.hit", scope="cache")
        with metrics.time_stage("schedule", scope="pipeline.cds"):
            pass
    assert not metrics_active()
    assert registry.counter("cache.hit", scope="cache") == 1
    assert registry.timers["pipeline.cds/schedule"]["count"] == 1
    # Nothing leaked into the global registry (collection was off).
    assert get_registry().counter("cache.hit", scope="cache") == 0


def test_concurrent_thread_scopes_are_disjoint():
    """Interleaved requests in one process record into their own
    registries — the bug the global registry had."""
    results = {}
    barrier = threading.Barrier(2)

    def request(name, repeats):
        with request_scope() as registry:
            barrier.wait()
            for _ in range(repeats):
                metrics.inc("work", scope=name)
            results[name] = registry.snapshot()

    first = threading.Thread(target=request, args=("req-a", 7))
    second = threading.Thread(target=request, args=("req-b", 3))
    first.start()
    second.start()
    first.join()
    second.join()
    assert results["req-a"]["counters"] == {"req-a/work": 7}
    assert results["req-b"]["counters"] == {"req-b/work": 3}


def test_concurrent_asyncio_scopes_are_disjoint():
    async def request(name, repeats):
        with request_scope() as registry:
            for _ in range(repeats):
                metrics.inc("work", scope=name)
                await asyncio.sleep(0)
            return registry.snapshot()

    async def drive():
        return await asyncio.gather(request("task-a", 5), request("task-b", 2))

    snapshots = asyncio.run(drive())
    assert snapshots[0]["counters"] == {"task-a/work": 5}
    assert snapshots[1]["counters"] == {"task-b/work": 2}


def test_scope_merges_into_active_global():
    registry = get_registry()
    registry.reset()
    previous = set_metrics_active(True)
    try:
        with request_scope():
            metrics.inc("merged", 4, scope="test")
        assert registry.counter("merged", scope="test") == 4
        with request_scope(merge_into_global=False):
            metrics.inc("merged", 1, scope="test")
        assert registry.counter("merged", scope="test") == 4
    finally:
        set_metrics_active(previous)
        registry.reset()


def test_nested_scope_shadows_outer():
    with request_scope() as outer:
        metrics.inc("n", scope="outer")
        with request_scope() as inner:
            metrics.inc("n", scope="inner")
        metrics.inc("n", scope="outer")
    assert outer.counters == {"outer/n": 2}
    assert inner.counters == {"inner/n": 1}


def test_noop_path_without_scope_or_flag():
    assert not metrics_active()
    assert recording_registry() is None
    # The disabled fast path hands back a shared no-op timer.
    first = metrics.time_stage("x")
    second = metrics.time_stage("y", scope="z")
    assert first is second
    metrics.inc("ignored")  # must not raise or record
    assert get_registry().counter("ignored") == 0


def test_registry_is_thread_safe_as_merge_target():
    """Many threads merging and recording into one registry (the
    service's global rollup) do not lose samples."""
    target = MetricsRegistry()
    source = MetricsRegistry()
    source.inc("count", 1, scope="s")
    source.observe("stage", 0.001, scope="s")
    snapshot = source.snapshot()

    def hammer():
        for _ in range(200):
            target.merge(snapshot)
            target.inc("direct")

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert target.counter("count", scope="s") == 8 * 200
    assert target.counter("direct") == 8 * 200
    assert target.timers["s/stage"]["count"] == 8 * 200
