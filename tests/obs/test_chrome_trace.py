"""Chrome ``trace_event`` exporter: schema conformance and content."""

import json

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.obs.trace import (
    TID_COMPUTE,
    TID_DECISIONS,
    TID_DMA,
    TRACE_PID,
    chrome_trace,
    render_text_timeline,
    report_to_dict,
    validate_chrome_trace,
)
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator
from repro.workloads.spec import paper_experiments


def _pipeline(spec_id, *, trace=True, decision_trace=False):
    spec = next(s for s in paper_experiments() if s.id == spec_id)
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    schedule = CompleteDataScheduler(
        architecture, ScheduleOptions(decision_trace=decision_trace)
    ).schedule(application, clustering)
    program = generate_program(schedule)
    report = Simulator(MorphoSysM1(architecture), trace=trace).run(program)
    return schedule, report


@pytest.fixture(scope="module")
def atr_traced():
    return _pipeline("ATR-FI", decision_trace=True)


class TestChromeTrace:
    def test_bundled_experiments_export_valid_payloads(self):
        for spec in paper_experiments():
            application, clustering = spec.build()
            architecture = Architecture.m1(spec.fb)
            schedule = CompleteDataScheduler(
                architecture, ScheduleOptions(decision_trace=True)
            ).schedule(application, clustering)
            program = generate_program(schedule)
            report = Simulator(MorphoSysM1(architecture), trace=True).run(
                program
            )
            payload = chrome_trace(report, decisions=schedule.decisions)
            validate_chrome_trace(payload)
            json.loads(json.dumps(payload))

    def test_thread_layout_and_event_counts(self, atr_traced):
        schedule, report = atr_traced
        payload = chrome_trace(report, decisions=schedule.decisions)
        events = payload["traceEvents"]
        thread_names = {
            event.get("tid"): event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names == {
            TID_COMPUTE: "RC array",
            TID_DMA: "DMA channel",
            TID_DECISIONS: "scheduler decisions",
        }
        compute = [e for e in events
                   if e["ph"] == "X" and e["tid"] == TID_COMPUTE]
        dma = [e for e in events if e["ph"] == "X" and e["tid"] == TID_DMA]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(compute) == len(report.visits)
        assert len(dma) == len(report.transfers)
        assert len(instants) == len(schedule.decisions)
        assert all(e["pid"] == TRACE_PID for e in events)

    def test_compute_events_carry_visit_timing(self, atr_traced):
        _, report = atr_traced
        payload = chrome_trace(report)
        compute = [e for e in payload["traceEvents"]
                   if e["ph"] == "X" and e["tid"] == TID_COMPUTE]
        for event, timing in zip(compute, report.visits):
            assert event["ts"] == timing.compute_start
            assert event["dur"] == timing.compute_cycles
            assert event["args"]["fb_set"] == timing.fb_set

    def test_dma_events_categorised_by_transfer_kind(self, atr_traced):
        _, report = atr_traced
        payload = chrome_trace(report)
        categories = {
            e["cat"] for e in payload["traceEvents"]
            if e["ph"] == "X" and e["tid"] == TID_DMA
        }
        assert categories <= {"data_load", "data_store", "context_load"}
        assert "data_load" in categories and "context_load" in categories

    def test_other_data_summarises_the_run(self, atr_traced):
        _, report = atr_traced
        payload = chrome_trace(report)
        other = payload["otherData"]
        assert other["scheduler"] == "cds"
        assert other["total_cycles"] == report.total_cycles
        assert other["cycles_per_us"] == 1
        assert other["dma_trace_recorded"] is True

    def test_untraced_run_exports_without_dma_thread_events(self):
        _, report = _pipeline("E1", trace=False)
        payload = chrome_trace(report)
        validate_chrome_trace(payload)
        dma = [e for e in payload["traceEvents"]
               if e["ph"] == "X" and e.get("tid") == TID_DMA]
        assert not dma
        assert payload["otherData"]["dma_trace_recorded"] is False


class TestValidator:
    def _valid(self):
        _, report = _pipeline("E1")
        return chrome_trace(report)

    @pytest.mark.parametrize("mutate, message", [
        (lambda p: "nope", "not an object"),
        (lambda p: {**p, "traceEvents": []}, "non-empty array"),
        (lambda p: _with_event(p, {"ph": "B", "pid": 0, "name": "x"}),
         "unsupported phase"),
        (lambda p: _with_event(p, {"ph": "X", "pid": 0, "name": "",
                                   "tid": 0, "ts": 0, "dur": 1}),
         "missing event name"),
        (lambda p: _with_event(p, {"ph": "X", "pid": "0", "name": "x",
                                   "tid": 0, "ts": 0, "dur": 1}),
         "pid must be an integer"),
        (lambda p: _with_event(p, {"ph": "X", "pid": 0, "name": "x",
                                   "ts": 0, "dur": 1}),
         "tid must be an integer"),
        (lambda p: _with_event(p, {"ph": "X", "pid": 0, "name": "x",
                                   "tid": 0, "ts": -4, "dur": 1}),
         "ts must be a non-negative integer"),
        (lambda p: _with_event(p, {"ph": "X", "pid": 0, "name": "x",
                                   "tid": 0, "ts": 0, "dur": -1}),
         "dur must be a non-negative integer"),
        (lambda p: _with_event(p, {"ph": "i", "pid": 0, "name": "x",
                                   "tid": 0, "ts": 0, "s": "z"}),
         "scope must be t/p/g"),
    ])
    def test_rejects_malformed_payloads(self, mutate, message):
        payload = mutate(self._valid())
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(payload)

    def test_accepts_its_own_output(self):
        validate_chrome_trace(self._valid())


def _with_event(payload, event):
    return {**payload, "traceEvents": payload["traceEvents"] + [event]}


class TestJsonAndTextExports:
    def test_report_to_dict_round_trips(self, atr_traced):
        _, report = atr_traced
        dumped = json.loads(json.dumps(report_to_dict(report)))
        assert dumped["total_cycles"] == report.total_cycles
        assert len(dumped["visits"]) == len(report.visits)
        assert len(dumped["transfers"]) == len(report.transfers)
        assert dumped["transfers"][0]["kind"] in (
            "data_load", "data_store", "context_load"
        )

    def test_text_timeline_includes_gantt_and_transfer_table(self, atr_traced):
        _, report = atr_traced
        text = render_text_timeline(report)
        assert "timeline" in text
        assert "kind" in text and "words" in text

    def test_text_timeline_flags_disabled_trace(self):
        _, report = _pipeline("E1", trace=False)
        text = render_text_timeline(report)
        assert "(trace disabled)" in text
